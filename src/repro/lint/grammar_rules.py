"""Grammar lint: well-formedness of a TAG quintuple.

Checks structural invariants of the grammar itself, before any derivation
exists: beta-tree foot/root agreement, lexeme-factory coverage and symbol
agreement for substitution slots, reachability of alpha- and beta-trees
from the start symbol, extension points with no registered revision, and
name collisions between ``I`` and ``A``.

The pass deliberately works on the grammar's *data* (``start``,
``alphas``, ``betas``, ``lexeme_factories``) rather than on
:class:`~repro.tag.grammar.TagGrammar`'s derived indexes, so it can also
audit hand-built or deserialised grammars that bypassed the constructor
-- the exact artifacts that used to fail N pool workers at once with an
unactionable traceback.
"""

from __future__ import annotations

import random

from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.registry import diag, register
from repro.tag.symbols import Symbol
from repro.tag.trees import AlphaTree, BetaTree, ElementaryTree

register("G001", "beta-tree foot node missing or label differs from root")
register("G002", "substitution slot has no registered lexeme factory")
register("G003", "lexeme factory produces a lexeme of the wrong symbol")
register(
    "G004",
    "alpha-tree unreachable: not rooted at the start symbol",
    Severity.WARNING,
)
register(
    "G005",
    "beta-tree unreachable: its root symbol is never an adjunction site",
    Severity.WARNING,
)
register(
    "G006",
    "extension point has no registered connector/extender beta-tree",
    Severity.WARNING,
)
register("G007", "tree name shared between initial and auxiliary sets")
register("G008", "grammar has no initial tree rooted at the start symbol")


def _tree_location(kind: str, tree: ElementaryTree, address=None) -> Location:
    return Location(obj=f"{kind} {tree.name!r}", address=address)


def _adjunction_site_symbols(tree: ElementaryTree) -> set[Symbol]:
    """Non-terminal node symbols where adjunction is possible."""
    return {
        node.symbol
        for __, node in tree.walk()
        if node.symbol.is_nonterminal and not node.is_foot and not node.is_subst
    }


def check_grammar(grammar) -> list[Diagnostic]:
    """Run the grammar pass; returns all findings.

    ``grammar`` needs ``start``, ``alphas``, ``betas`` and
    ``lexeme_factories`` attributes (:class:`TagGrammar` or compatible).
    """
    findings: list[Diagnostic] = []
    alphas: dict[str, AlphaTree] = dict(grammar.alphas)
    betas: dict[str, BetaTree] = dict(grammar.betas)
    factories = dict(grammar.lexeme_factories)
    trees: list[tuple[str, ElementaryTree]] = [
        *(("alpha", tree) for tree in alphas.values()),
        *(("beta", tree) for tree in betas.values()),
    ]

    # G007: name collisions.
    for name in sorted(set(alphas) & set(betas)):
        findings.append(
            diag(
                "G007",
                f"name {name!r} is used by both an alpha- and a beta-tree",
                Location(obj="grammar"),
            )
        )

    # G001: foot/root agreement of auxiliary trees.
    for beta in betas.values():
        feet = [
            (address, node) for address, node in beta.walk() if node.is_foot
        ]
        if len(feet) != 1:
            findings.append(
                diag(
                    "G001",
                    f"beta-tree has {len(feet)} foot nodes, expected 1",
                    _tree_location("beta", beta),
                )
            )
        else:
            address, foot = feet[0]
            if foot.symbol != beta.root.symbol:
                findings.append(
                    diag(
                        "G001",
                        f"foot label {foot.symbol} differs from root label "
                        f"{beta.root.symbol}",
                        _tree_location("beta", beta, address),
                    )
                )

    # G002/G003: substitution slots vs lexeme factories.
    probed: set[Symbol] = set()
    for kind, tree in trees:
        for address, node in tree.walk():
            if not node.is_subst:
                continue
            factory = factories.get(node.symbol)
            if factory is None:
                findings.append(
                    diag(
                        "G002",
                        f"substitution slot {node.symbol} has no lexeme "
                        "factory",
                        _tree_location(kind, tree, address),
                    )
                )
            elif node.symbol not in probed:
                probed.add(node.symbol)
                lexeme = factory(random.Random(0))
                if lexeme.symbol != node.symbol:
                    findings.append(
                        diag(
                            "G003",
                            f"factory for slot {node.symbol} produces "
                            f"lexemes labelled {lexeme.symbol}",
                            _tree_location(kind, tree, address),
                        )
                    )

    # Reachability: start alphas seed the reachable set; a beta is
    # reachable when its root symbol is an adjunction site of a reachable
    # tree, and then contributes its own adjunction sites.
    start_alphas = [
        alpha for alpha in alphas.values() if alpha.root.symbol == grammar.start
    ]
    if not start_alphas:
        findings.append(
            diag(
                "G008",
                f"no initial tree is rooted at the start symbol "
                f"{grammar.start}",
                Location(obj="grammar"),
            )
        )

    reachable_sites: set[Symbol] = set()
    for alpha in start_alphas:
        reachable_sites |= _adjunction_site_symbols(alpha)
    reachable_betas: set[str] = set()
    changed = True
    while changed:
        changed = False
        for beta in betas.values():
            if beta.name in reachable_betas:
                continue
            if beta.root.symbol in reachable_sites:
                reachable_betas.add(beta.name)
                reachable_sites |= _adjunction_site_symbols(beta)
                changed = True

    for alpha in alphas.values():
        if alpha.root.symbol != grammar.start:
            findings.append(
                diag(
                    "G004",
                    f"alpha-tree rooted at {alpha.root.symbol} can never "
                    f"start a derivation (start symbol is {grammar.start})",
                    _tree_location("alpha", alpha),
                )
            )
    for beta in betas.values():
        if beta.name not in reachable_betas:
            findings.append(
                diag(
                    "G005",
                    f"beta-tree rooted at {beta.root.symbol} can never "
                    "adjoin: no reachable tree offers that site",
                    _tree_location("beta", beta),
                )
            )

    # G006: extension-point sites with no beta rooted there.  Only
    # connector/extender symbols are extension points; plain non-terminals
    # (Exp, Model) legitimately have no revisions.
    beta_roots = {beta.root.symbol for beta in betas.values()}
    flagged: set[Symbol] = set()
    for kind, tree in trees:
        for address, node in tree.walk():
            symbol = node.symbol
            if node.is_foot or node.is_subst or symbol in flagged:
                continue
            if not _is_extension_symbol(symbol):
                continue
            if symbol not in beta_roots:
                flagged.add(symbol)
                findings.append(
                    diag(
                        "G006",
                        f"extension point {symbol} has no registered "
                        "beta-tree: revisions can never attach there",
                        _tree_location(kind, tree, address),
                    )
                )
    return findings


def _is_extension_symbol(symbol: Symbol) -> bool:
    from repro.tag.symbols import is_connector, is_extender

    return is_connector(symbol) or is_extender(symbol)
