"""Seeded-violation fixtures: one minimal offender per lint rule.

Every registered rule has a fixture here that builds an artifact
violating exactly that rule and runs the relevant pass over it.  The
fixtures serve two purposes:

* ``python -m repro.lint --self-check`` audits that every rule still
  fires exactly once on its fixture (so rules cannot silently rot);
* the test suite parametrises over :func:`all_fixtures` for the same
  guarantee under pytest.

Several fixtures must *bypass* the constructors' own validation (that is
the point: the linter exists to diagnose artifacts that arrive broken,
e.g. via pickles), which is done with ``object.__new__`` -- never do this
outside fixtures.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.expr import ast
from repro.expr.ast import Const, Ext, Param, State, Var
from repro.gp.knowledge import (
    ExtensionSpec,
    ParameterPrior,
    PriorKnowledge,
    build_grammar,
)
from repro.lint.diagnostics import LintReport
from repro.lint.runner import (
    lint_derivation,
    lint_equations,
    lint_expression,
    lint_grammar,
)
from repro.lint.system_rules import (
    check_equation_count,
    check_mixing_fractions,
)
from repro.tag.derivation import DerivationNode, DerivationTree
from repro.tag.derive import op_leaf
from repro.tag.grammar import RandomValueLexemeFactory, TagGrammar
from repro.tag.symbols import (
    EXP,
    VALUE,
    connector_symbol,
    nonterminal,
    terminal,
)
from repro.tag.trees import AlphaTree, BetaTree, Lexeme, TreeNode

#: Registry of fixture builders, keyed by the rule they violate.
FIXTURES: dict[str, Callable[[], LintReport]] = {}


_Builder = Callable[[], LintReport]


def fixture(rule_id: str) -> Callable[[_Builder], _Builder]:
    def decorate(builder: _Builder) -> _Builder:
        FIXTURES[rule_id] = builder
        return builder

    return decorate


def all_fixtures() -> dict[str, Callable[[], LintReport]]:
    return dict(FIXTURES)


# --------------------------------------------------------------------------
# Construction helpers


def _raw_beta(name: str, root: TreeNode) -> BetaTree:
    """A BetaTree bypassing foot validation (fixtures only)."""
    tree = object.__new__(BetaTree)
    object.__setattr__(tree, "name", name)
    object.__setattr__(tree, "root", root)
    return tree


def _raw_grammar(start, alphas, betas, factories) -> TagGrammar:
    """A TagGrammar bypassing construction-time validation."""
    grammar = object.__new__(TagGrammar)
    grammar.start = start
    grammar.alphas = dict(alphas)
    grammar.betas = dict(betas)
    grammar.lexeme_factories = dict(factories)
    by_root: dict = {}
    for beta in grammar.betas.values():
        by_root.setdefault(beta.root.symbol, []).append(beta)
    grammar._betas_by_root = by_root
    return grammar


def _const_leaf(value: float = 1.0) -> TreeNode:
    return TreeNode(terminal(f"const:{value:g}"), payload=("const", value))


def small_knowledge() -> PriorKnowledge:
    """A minimal two-state knowledge bundle for derivation fixtures."""
    seed = {
        "B": Ext("Ext1", ast.mul(State("B"), Param("mu"))),
        "Z": Ext("Ext2", ast.mul(State("Z"), Param("nu"))),
    }
    return PriorKnowledge(
        seed_equations=seed,
        priors={
            "mu": ParameterPrior("mu", 1.0, 0.0, 2.0),
            "nu": ParameterPrior("nu", 0.5, 0.0, 1.0),
        },
        extensions=[
            ExtensionSpec("Ext1", ("Va", "Vb")),
            ExtensionSpec("Ext2", ("Vc",)),
        ],
    )


def _derivation_base() -> tuple[TagGrammar, DerivationNode]:
    grammar = build_grammar(small_knowledge())
    return grammar, DerivationNode(tree=grammar.alphas["seed"])


def _site(root: DerivationNode, grammar: TagGrammar, ext: str):
    for address in root.open_adjunction_addresses(grammar):
        if root.tree.node_at(address).symbol.name.endswith(ext):
            return address
    raise AssertionError(f"no open {ext} site")


def _filled(grammar: TagGrammar, beta_name: str) -> DerivationNode:
    node = DerivationNode(tree=grammar.betas[beta_name])
    node.fill_lexemes(grammar, random.Random(0))
    return node


# --------------------------------------------------------------------------
# Grammar-rule fixtures

_A = nonterminal("A")
_B = nonterminal("Bee")


@fixture("G001")
def _g001() -> LintReport:
    bad = _raw_beta(
        "bad-foot",
        TreeNode(_A, (TreeNode(_B, is_foot=True), _const_leaf())),
    )
    alpha = AlphaTree("seed", TreeNode(_A))
    return lint_grammar(
        _raw_grammar(_A, {"seed": alpha}, {"bad-foot": bad}, {})
    )


@fixture("G002")
def _g002() -> LintReport:
    alpha = AlphaTree(
        "seed", TreeNode(_A, (TreeNode(VALUE, is_subst=True),))
    )
    return lint_grammar(_raw_grammar(_A, {"seed": alpha}, {}, {}))


@fixture("G003")
def _g003() -> LintReport:
    slot = nonterminal("Ctr_x")
    alpha = AlphaTree("seed", TreeNode(_A, (TreeNode(slot, is_subst=True),)))
    # The factory emits VALUE-labelled lexemes for a Ctr_x slot.
    grammar = TagGrammar(
        start=_A,
        alphas={"seed": alpha},
        betas={},
        lexeme_factories={slot: RandomValueLexemeFactory()},
    )
    return lint_grammar(grammar)


@fixture("G004")
def _g004() -> LintReport:
    grammar = TagGrammar(
        start=_A,
        alphas={
            "seed": AlphaTree("seed", TreeNode(_A)),
            "orphan": AlphaTree("orphan", TreeNode(EXP)),
        },
    )
    return lint_grammar(grammar)


@fixture("G005")
def _g005() -> LintReport:
    nowhere = nonterminal("Nowhere")
    beta = BetaTree(
        "island",
        TreeNode(
            nowhere,
            (TreeNode(nowhere, is_foot=True), op_leaf("+"), _const_leaf()),
        ),
    )
    grammar = TagGrammar(
        start=_A,
        alphas={"seed": AlphaTree("seed", TreeNode(_A))},
        betas={"island": beta},
    )
    return lint_grammar(grammar)


@fixture("G006")
def _g006() -> LintReport:
    root = TreeNode(
        _A, (TreeNode(connector_symbol("Ext1"), (_const_leaf(),)),)
    )
    grammar = TagGrammar(start=_A, alphas={"seed": AlphaTree("seed", root)})
    return lint_grammar(grammar)


@fixture("G007")
def _g007() -> LintReport:
    alpha = AlphaTree("twin", TreeNode(_A))
    beta = BetaTree(
        "twin",
        TreeNode(_A, (TreeNode(_A, is_foot=True), _const_leaf())),
    )
    return lint_grammar(
        _raw_grammar(_A, {"twin": alpha}, {"twin": beta}, {})
    )


@fixture("G008")
def _g008() -> LintReport:
    return lint_grammar(_raw_grammar(_A, {}, {}, {}))


# --------------------------------------------------------------------------
# Derivation-rule fixtures


@fixture("D001")
def _d001() -> LintReport:
    grammar, root = _derivation_base()
    ghost = AlphaTree("ghost", grammar.alphas["seed"].root)
    return lint_derivation(
        DerivationTree(DerivationNode(tree=ghost)), grammar
    )


@fixture("D002")
def _d002() -> LintReport:
    grammar, __ = _derivation_base()
    grammar.alphas["aux"] = AlphaTree("aux", TreeNode(EXP))
    return lint_derivation(
        DerivationTree(DerivationNode(tree=grammar.alphas["aux"])), grammar
    )


@fixture("D003")
def _d003() -> LintReport:
    grammar, root = _derivation_base()
    leafy = AlphaTree("leafy", TreeNode(EXP))
    root.children[_site(root, grammar, "Ext1")] = DerivationNode(tree=leafy)
    return lint_derivation(DerivationTree(root), grammar)


@fixture("D004")
def _d004() -> LintReport:
    grammar, root = _derivation_base()
    root.children[(9, 9, 9)] = _filled(grammar, "conn:Ext1:+:Va")
    return lint_derivation(DerivationTree(root), grammar)


@fixture("D005")
def _d005() -> LintReport:
    grammar, root = _derivation_base()
    root.children[_site(root, grammar, "Ext1")] = _filled(
        grammar, "conn:Ext2:+:Vc"
    )
    return lint_derivation(DerivationTree(root), grammar)


@fixture("D006")
def _d006() -> LintReport:
    grammar, root = _derivation_base()
    child = _filled(grammar, "conn:Ext1:+:Va")
    root.children[_site(root, grammar, "Ext1")] = child
    # The conn beta's foot is its first child: same symbol, but marked.
    child.children[(0,)] = _filled(grammar, "conn:Ext1:+:Vb")
    return lint_derivation(DerivationTree(root), grammar)


@fixture("D007")
def _d007() -> LintReport:
    grammar, root = _derivation_base()
    unfilled = DerivationNode(tree=grammar.betas["conn:Ext1:+:R"])
    root.children[_site(root, grammar, "Ext1")] = unfilled
    return lint_derivation(DerivationTree(root), grammar)


@fixture("D008")
def _d008() -> LintReport:
    grammar, root = _derivation_base()
    node = DerivationNode(tree=grammar.betas["conn:Ext1:+:R"])
    slot = node.tree.substitution_addresses()[0]
    node.lexemes[slot] = Lexeme(EXP)
    root.children[_site(root, grammar, "Ext1")] = node
    return lint_derivation(DerivationTree(root), grammar)


@fixture("D009")
def _d009() -> LintReport:
    grammar, root = _derivation_base()
    node = _filled(grammar, "conn:Ext1:+:R")
    node.lexemes[(0,)] = Lexeme(VALUE)  # the foot address is not a slot
    root.children[_site(root, grammar, "Ext1")] = node
    return lint_derivation(DerivationTree(root), grammar)


@fixture("D010")
def _d010() -> LintReport:
    grammar, root = _derivation_base()
    template = grammar.betas["conn:Ext1:+:Va"]
    rogue = BetaTree("rogue", template.root)
    node = DerivationNode(tree=rogue)
    node.fill_lexemes(grammar, random.Random(0))
    root.children[_site(root, grammar, "Ext1")] = node
    return lint_derivation(DerivationTree(root), grammar)


# --------------------------------------------------------------------------
# Expression-rule fixtures

_EXPR_SCOPE = dict(
    states=("B",), variables=("Va",), parameters=("mu",)
)


@fixture("E001")
def _e001() -> LintReport:
    return lint_expression(ast.add(State("Q"), State("B")), **_EXPR_SCOPE)


@fixture("E002")
def _e002() -> LintReport:
    return lint_expression(ast.add(Var("Vz"), Var("Va")), **_EXPR_SCOPE)


@fixture("E003")
def _e003() -> LintReport:
    return lint_expression(ast.add(Param("ghost"), Param("mu")), **_EXPR_SCOPE)


@fixture("E004")
def _e004() -> LintReport:
    expr = ast.add(Ext("Ext1", Const(1.0)), Ext("Ext1", Const(2.0)))
    return lint_expression(expr, **_EXPR_SCOPE)


@fixture("E005")
def _e005() -> LintReport:
    return lint_expression(ast.div(Var("Va"), Const(0.0)), **_EXPR_SCOPE)


@fixture("E006")
def _e006() -> LintReport:
    dead = ast.mul(Var("Va"), Const(0.0))
    return lint_expression(ast.add(dead, Var("Va")), **_EXPR_SCOPE)


# --------------------------------------------------------------------------
# System-rule fixtures


@fixture("S001")
def _s001() -> LintReport:
    return lint_equations({"B": State("Z")}, (), ())


@fixture("S002")
def _s002() -> LintReport:
    return lint_equations({"B": State("B")}, ("mu",), ())


@fixture("S003")
def _s003() -> LintReport:
    return lint_equations({"B": State("B")}, (), ("Va",))


@fixture("S004")
def _s004() -> LintReport:
    return lint_equations({"B": Param("mu")}, (), ())


@fixture("S005")
def _s005() -> LintReport:
    return LintReport(check_mixing_fractions("S1", [1.0, 0.8, 1.0]))


@fixture("S006")
def _s006() -> LintReport:
    return lint_equations({"B": Var("Va")}, (), ())


@fixture("S007")
def _s007() -> LintReport:
    return LintReport(check_equation_count(1, ("B", "Z")))


# --------------------------------------------------------------------------
# Interval rules (A) -- seeded violations for the abstract interpreter.
# Each fixture hand-builds a minimal AbstractEnv; ``Va`` plays a bounded
# positive driver, ``B`` a clamped state.


def _abs_env() -> "AbstractEnv":
    from repro.lint.absint import AbstractEnv, Interval

    return AbstractEnv(
        states={"B": Interval(1e-3, 1e4)},
        variables={"Va": Interval(0.05, 3.0)},
        params={"mu": Interval(0.0, 2.0)},
    )


@fixture("A001")
def _a001() -> LintReport:
    # inf + (-inf) is NaN for every input: provably divergent at step 1.
    from repro.lint.absint import check_rhs

    expr = ast.add(
        ast.mul(Const(1e200), Const(1e200)),
        ast.mul(Const(-1e200), Const(1e200)),
    )
    return check_rhs(expr, _abs_env(), state="B")


@fixture("A002")
def _a002() -> LintReport:
    # Denominator sits entirely inside the protection band: always 0.
    from repro.lint.absint import check_intervals

    return check_intervals(ast.div(Var("Va"), Const(5e-13)), _abs_env())


@fixture("A003")
def _a003() -> LintReport:
    # Denominator straddles the protection band.
    from repro.lint.absint import AbstractEnv, Interval, check_intervals

    env = AbstractEnv(variables={"Vd": Interval(-1.0, 1.0)})
    return check_intervals(ast.div(Const(1.0), Var("Vd")), env)


@fixture("A004")
def _a004() -> LintReport:
    # exp argument always at or above the saturation clamp EXP_MAX.
    from repro.lint.absint import check_intervals

    return check_intervals(
        ast.exp(ast.add(Var("Va"), Const(100.0))), _abs_env()
    )


@fixture("A005")
def _a005() -> LintReport:
    # log argument magnitude always inside the protection band.
    from repro.lint.absint import check_intervals

    return check_intervals(
        ast.log(ast.mul(Var("Va"), Const(1e-20))), _abs_env()
    )


@fixture("A006")
def _a006() -> LintReport:
    # min always selects the left operand: Va <= 3 < 10.
    from repro.lint.absint import check_intervals

    return check_intervals(ast.minimum(Var("Va"), Const(10.0)), _abs_env())


@fixture("A007")
def _a007() -> LintReport:
    # Va * 0 is provably constant despite the varying driver.
    from repro.lint.absint import check_intervals

    return check_intervals(ast.mul(Var("Va"), Const(0.0)), _abs_env())


@fixture("A008")
def _a008() -> LintReport:
    # Euler update lands below the clamp floor for every input.
    from repro.dynamics.integrate import ClampSpec
    from repro.lint.absint import check_rhs

    return check_rhs(
        Const(-1e9),
        _abs_env(),
        state="B",
        clamp=ClampSpec(1e-3, 1e4),
        dt=1.0,
    )


# --------------------------------------------------------------------------
# Unit rules (U) -- seeded violations for dimensional inference.


def _unit_env() -> "UnitEnv":
    from repro.lint.units import UnitEnv, parse_unit

    return UnitEnv(
        {
            "B": parse_unit("ug L^-1"),
            "Va": parse_unit("degC"),
            "mu": parse_unit("day^-1"),
        }
    )


@fixture("U001")
def _u001() -> LintReport:
    from repro.lint.units import check_units

    return check_units(ast.add(State("B"), Var("Va")), _unit_env())[1]


@fixture("U002")
def _u002() -> LintReport:
    from repro.lint.units import check_units

    return check_units(ast.minimum(State("B"), Var("Va")), _unit_env())[1]


@fixture("U003")
def _u003() -> LintReport:
    from repro.lint.units import check_units

    return check_units(ast.exp(State("B")), _unit_env())[1]


@fixture("U004")
def _u004() -> LintReport:
    # d(B)/dt must be ug L^-1 day^-1; a bare B is not.
    from repro.lint.units import check_units, parse_unit

    return check_units(
        State("B"), _unit_env(), expected=parse_unit("ug L^-1 day^-1")
    )[1]


@fixture("U005")
def _u005() -> LintReport:
    from repro.lint.units import check_units

    return check_units(Var("Vmystery"), _unit_env())[1]


@fixture("U006")
def _u006() -> LintReport:
    from repro.lint.units import build_unit_env

    return build_unit_env({"B": "ug/L"})[1]


# --------------------------------------------------------------------------
# Source rules (C) -- seeded violations for the determinism sanitizer.


@fixture("C001")
def _c001() -> LintReport:
    from repro.lint.sanitize import scan_source

    return scan_source("import random\nx = random.random()\n", "fixture.py")


@fixture("C002")
def _c002() -> LintReport:
    from repro.lint.sanitize import scan_source

    return scan_source("import time\nt = time.time()\n", "fixture.py")


@fixture("C003")
def _c003() -> LintReport:
    from repro.lint.sanitize import scan_source

    return scan_source("for x in {1, 2}:\n    pass\n", "fixture.py")


# --------------------------------------------------------------------------
# Self-check


def audit_fixtures() -> list[str]:
    """Audit the registry against the fixtures; returns problem strings.

    Every registered rule must have a fixture on which it fires exactly
    once at its declared severity, and every fixture must correspond to a
    registered rule.  An empty list means the audit passed.
    """
    from repro.lint.registry import all_rules

    problems: list[str] = []
    rules = all_rules()
    for rule in rules:
        builder = FIXTURES.get(rule.id)
        if builder is None:
            problems.append(f"{rule.id}: no seeded-violation fixture")
            continue
        report = builder()
        hits = report.by_rule(rule.id)
        if len(hits) != 1:
            problems.append(
                f"{rule.id}: fixture fired {len(hits)} time(s), expected "
                "exactly 1"
            )
        for finding in hits:
            if finding.severity is not rule.severity:
                problems.append(
                    f"{rule.id}: fixture fired at severity "
                    f"{finding.severity}, declared {rule.severity}"
                )
    known = {rule.id for rule in rules}
    for extra in sorted(set(FIXTURES) - known):
        problems.append(f"{extra}: fixture for an unregistered rule")
    return problems
