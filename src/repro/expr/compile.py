"""Runtime compilation of expression ASTs to Python functions.

The paper evaluates evolved models with *runtime compilation* (tree ->
source -> G++ -> dynamically loaded object).  We reproduce the same code
path in Python: the AST is lowered to straight-line Python source (one
assignment per node, so protected-operator guards never duplicate work),
compiled once with :func:`compile`, and the resulting function is reused
for every time step of every simulation.

Compiled functions take positional tuples rather than name lookups --
the orderings of parameters, driver variables, and states are baked into
the generated source, which is what makes the compiled path fast.

The compiler and the reference interpreter in :mod:`repro.expr.evaluate`
implement identical protected semantics; the property-based test suite
checks them against each other on random expressions.

Three kernel forms are emitted from the same lowering pass:

* the **scalar** form (:func:`compile_model`) steps one candidate at a
  time through plain Python floats, and
* the **batched** form (:func:`compile_model_batched`) evaluates K
  parameter columns at once through NumPy: ``P`` is an ``(n_params, K)``
  matrix, ``S`` an ``(n_states, K)`` state matrix, and every protected
  operator is the vectorised twin of the interpreter's
  (:func:`repro.expr.evaluate.batched_protected_div` and friends), so a
  batched step agrees with K scalar steps to float tolerance, and
* the **cohort** form (:func:`compile_model_cohort`) fuses M distinct
  structures into one kernel over ``M * K`` padded lanes: every member's
  subexpressions are evaluated over the full fused width through a
  cohort-wide value-numbering table, so positionally identical
  subexpressions of *different* structures are computed once, and each
  member's results are written only to its own lane slice.

Compilation cost is paid once per structure per process: kernels are
memoised in a bounded process-global LRU (:data:`KERNEL_CACHE`), which
worker processes repopulate lazily after pickling (exec-generated
functions cannot cross process boundaries).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence

import numpy as np

from repro.expr.ast import BinOp, Const, Expr, Ext, Param, State, UnOp, Var
from repro.expr.evaluate import (
    DIV_EPS,
    EXP_MAX,
    LOG_EPS,
    batched_max,
    batched_min,
    batched_protected_div,
    batched_protected_exp,
    batched_protected_log,
)

#: Signature of a compiled single-expression function.
CompiledExpr = Callable[[Sequence[float], Sequence[float], Sequence[float]], float]

#: Signature of a compiled multi-output (model step) function.
CompiledModel = Callable[
    [Sequence[float], Sequence[float], Sequence[float]], tuple[float, ...]
]

class CompiledBatchedModel:
    """A two-phase batched step kernel over K parameter columns.

    Euler integration is sequential in the state, but every temporary
    that depends only on parameters and drivers is constant across the
    rollout (parameters) or known for all T rows up front (drivers).
    :meth:`precompute` evaluates those hoisted temporaries for an entire
    ``(T, n_vars)`` driver table in one vectorised pass; :meth:`step`
    then computes just the state-dependent remainder for one row, which
    cuts the per-step NumPy call count by the hoisted fraction of the
    model.

    Calling the kernel directly as ``kernel(P, V, S)`` with a single
    driver row ``V`` of shape ``(n_vars,)`` runs both phases for that
    row -- the convenient form for tests and one-off evaluations.
    """

    __slots__ = ("_precompute_fn", "_step_fn", "source", "n_hoisted")

    def __init__(
        self,
        precompute_fn: Callable,
        step_fn: Callable,
        source: str,
        n_hoisted: int,
    ) -> None:
        self._precompute_fn = precompute_fn
        self._step_fn = step_fn
        self.source = source
        self.n_hoisted = n_hoisted

    def precompute(self, params: np.ndarray, driver_table: np.ndarray) -> tuple:
        """Hoisted temporaries for all rows of ``driver_table``.

        Each element is an array whose leading axis indexes the table's
        rows; pass the tuple to :meth:`step` with the row offset.
        """
        return self._precompute_fn(params, driver_table)

    def step(
        self, params: np.ndarray, hoisted: tuple, row: int, states: np.ndarray
    ) -> np.ndarray:
        """One derivative step: ``(n_states, K)`` for driver row ``row``."""
        return self._step_fn(params, hoisted, row, states)

    def __call__(
        self, params: np.ndarray, driver_row: np.ndarray, states: np.ndarray
    ) -> np.ndarray:
        table = np.asarray(driver_row, dtype=float).reshape(1, -1)
        return self._step_fn(params, self._precompute_fn(params, table), 0, states)


class CompiledCohortKernel(CompiledBatchedModel):
    """A fused step kernel integrating several structures side by side.

    The cohort form generalises the batched kernel from one structure's
    K parameter columns to M structures × K lanes: parameter matrix
    ``P`` has shape ``(n_params, M * K)`` (rows follow each member's own
    ``param_order`` within its lane block, unused rows are ignored) and
    the state matrix ``S`` has shape ``(n_states, M * K)``.  Member
    ``m`` owns lanes ``[m * K, (m + 1) * K)``; every subexpression is
    evaluated over the *full* fused width, so positionally identical
    subexpressions of different members collapse to one temp under value
    numbering -- the lanes a member does not own carry other members'
    values (or garbage) and are never written to its output slice.
    """

    __slots__ = ("n_members", "lanes_per_member", "n_params", "n_states")

    def __init__(
        self,
        precompute_fn: Callable,
        step_fn: Callable,
        source: str,
        n_hoisted: int,
        n_members: int,
        lanes_per_member: int,
        n_params: int,
        n_states: int,
    ) -> None:
        super().__init__(precompute_fn, step_fn, source, n_hoisted)
        self.n_members = n_members
        self.lanes_per_member = lanes_per_member
        self.n_params = n_params
        self.n_states = n_states

    @property
    def width(self) -> int:
        """Total fused lane count ``n_members * lanes_per_member``."""
        return self.n_members * self.lanes_per_member


class CompilationError(ValueError):
    """Raised when an expression cannot be lowered to source."""


class _Emitter:
    """Lowers expression trees to straight-line Python assignments."""

    def __init__(
        self,
        param_order: Sequence[str],
        var_order: Sequence[str],
        state_order: Sequence[str],
    ) -> None:
        self._param_index = {name: i for i, name in enumerate(param_order)}
        self._var_index = {name: i for i, name in enumerate(var_order)}
        self._state_index = {name: i for i, name in enumerate(state_order)}
        self.lines: list[str] = []
        self._counter = 0
        self._memo: dict[int, str] = {}
        self._values: dict[str, str] = {}

    def _fresh(self) -> str:
        name = f"t{self._counter}"
        self._counter += 1
        return name

    def _assign(self, rhs: str) -> str:
        # Value numbering: every emitted rhs is a pure expression over
        # SSA temps, so textually identical rhs compute identical values
        # and structurally repeated subtrees collapse to one temp.
        cached = self._values.get(rhs)
        if cached is not None:
            return cached
        name = self._fresh()
        self.lines.append(f"    {name} = {rhs}")
        self._values[rhs] = name
        return name

    def emit(self, expr: Expr) -> str:
        """Emit assignments computing ``expr``; return its temp name."""
        memo_key = id(expr)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        name = self._emit(expr)
        self._memo[memo_key] = name
        return name

    def _emit(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            return self._assign(repr(expr.value))
        if isinstance(expr, Param):
            index = self._lookup(self._param_index, expr.name, "parameter")
            return self._assign(f"P[{index}]")
        if isinstance(expr, Var):
            index = self._lookup(self._var_index, expr.name, "variable")
            return self._assign(f"V[{index}]")
        if isinstance(expr, State):
            index = self._lookup(self._state_index, expr.name, "state")
            return self._assign(f"S[{index}]")
        if isinstance(expr, Ext):
            return self.emit(expr.operand)
        if isinstance(expr, UnOp):
            operand = self.emit(expr.operand)
            return self._emit_unary(expr.op, operand)
        if isinstance(expr, BinOp):
            lhs = self.emit(expr.lhs)
            rhs = self.emit(expr.rhs)
            return self._emit_binary(expr.op, lhs, rhs)
        raise CompilationError(f"cannot compile node type {type(expr).__name__}")

    @staticmethod
    def _lookup(index: dict[str, int], name: str, kind: str) -> int:
        try:
            return index[name]
        except KeyError:
            raise CompilationError(f"unbound {kind} {name!r}") from None

    # Every guard below keeps the *protected* branch on the `if` side of
    # the conditional, mirroring the interpreter's comparison direction.
    # The directions matter for NaN operands (any comparison with NaN is
    # False): ``0.0 if m < eps else x / y`` propagates a NaN denominator
    # like protected_div does, while the flipped spelling
    # ``x / y if m >= eps else 0.0`` would silently map it to 0.0.

    def _emit_unary(self, op: str, operand: str) -> str:
        if op == "neg":
            return self._assign(f"-{operand}")
        if op == "exp":
            clamped = self._assign(
                f"{EXP_MAX!r} if {operand} > {EXP_MAX!r} else {operand}"
            )
            return self._assign(f"_exp({clamped})")
        if op == "log":
            magnitude = self._assign(
                f"{operand} if {operand} >= 0.0 else -{operand}"
            )
            return self._assign(
                f"0.0 if {magnitude} < {LOG_EPS!r} else _log({magnitude})"
            )
        raise CompilationError(f"unknown unary operator {op!r}")

    def _emit_binary(self, op: str, lhs: str, rhs: str) -> str:
        if op in ("+", "-", "*"):
            return self._assign(f"{lhs} {op} {rhs}")
        if op == "/":
            magnitude = self._assign(f"{rhs} if {rhs} >= 0.0 else -{rhs}")
            return self._assign(
                f"0.0 if {magnitude} < {DIV_EPS!r} else {lhs} / {rhs}"
            )
        # Python's min/max return the *first* argument on ties and on any
        # NaN-poisoned comparison; spell out the exact builtin semantics.
        if op == "min":
            return self._assign(f"{rhs} if {rhs} < {lhs} else {lhs}")
        if op == "max":
            return self._assign(f"{rhs} if {rhs} > {lhs} else {lhs}")
        raise CompilationError(f"unknown binary operator {op!r}")


def generate_source(
    exprs: Sequence[Expr],
    param_order: Sequence[str],
    var_order: Sequence[str],
    state_order: Sequence[str],
    name: str = "_compiled",
) -> str:
    """Generate Python source for a function computing ``exprs``.

    The generated function has the signature ``f(P, V, S)`` and returns a
    tuple with one value per expression (or a bare float for a single
    expression, see :func:`compile_expr`).
    """
    emitter = _Emitter(param_order, var_order, state_order)
    results = [emitter.emit(expr) for expr in exprs]
    header = f"def {name}(P, V, S):"
    returns = "    return (" + ", ".join(results) + ("," if len(results) == 1 else "") + ")"
    return "\n".join([header, *emitter.lines, returns])


def _compile_source(source: str, name: str) -> Callable:
    namespace = {"_exp": math.exp, "_log": math.log}
    code = compile(source, filename=f"<repro:{name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - generated from our own AST only
    return namespace[name]


def compile_expr(
    expr: Expr,
    param_order: Sequence[str],
    var_order: Sequence[str] = (),
    state_order: Sequence[str] = (),
) -> CompiledExpr:
    """Compile a single expression to a function ``f(P, V, S) -> float``."""
    source = generate_source([expr], param_order, var_order, state_order)
    tupled = _compile_source(source, "_compiled")

    def scalar(P: Sequence[float], V: Sequence[float] = (), S: Sequence[float] = ()) -> float:
        return tupled(P, V, S)[0]

    scalar.source = source  # type: ignore[attr-defined]
    return scalar


def compile_model(
    exprs: Sequence[Expr],
    param_order: Sequence[str],
    var_order: Sequence[str],
    state_order: Sequence[str],
) -> CompiledModel:
    """Compile several expressions into one function returning a tuple.

    This is the *model step* form used by the dynamic-system simulator:
    one output per state derivative, all sharing the emitted temporaries.
    """
    source = generate_source(exprs, param_order, var_order, state_order)
    func = _compile_source(source, "_compiled")
    func.source = source  # type: ignore[attr-defined]
    return func


#: Dependency bits of an expression: which leaf kinds it reads.
_DEP_P, _DEP_V, _DEP_S = 1, 2, 4


class _BatchedEmitter:
    """Lowers expression trees to two-phase NumPy source.

    Temporaries that depend on drivers but not on state are *hoisted*:
    the precompute function evaluates them for every time row at once
    over the full ``(T, n_vars)`` driver table (``VT[:, i:i+1]`` columns
    broadcast against ``(K,)`` parameter rows into ``(T, K)`` arrays),
    and the step function only extracts their current row from the
    hoisted tuple ``C`` and evaluates the state-dependent remainder.
    Protected operators route through the vectorised helpers of
    :mod:`repro.expr.evaluate` in both phases, so the batched semantics
    stay defined in exactly one place.  A parameter-only subtree feeding
    a hoisted temporary is re-emitted into the precompute stream; both
    streams apply the scalar emitter's value numbering independently.
    """

    def __init__(
        self,
        param_order: Sequence[str],
        var_order: Sequence[str],
        state_order: Sequence[str],
    ) -> None:
        self._param_index = {name: i for i, name in enumerate(param_order)}
        self._var_index = {name: i for i, name in enumerate(var_order)}
        self._state_index = {name: i for i, name in enumerate(state_order)}
        self.pre_lines: list[str] = []
        self.step_lines: list[str] = []
        self._counter = 0
        self._pre_values: dict[str, str] = {}
        self._step_values: dict[str, str] = {}
        self._pre_memo: dict[int, str] = {}
        self._step_memo: dict[int, str] = {}
        self._dep_memo: dict[int, int] = {}
        self._rows: dict[str, str] = {}
        #: Hoisted temp names in precompute-return order.
        self.hoisted: list[str] = []
        #: Temps whose trailing axis spans the full column width.  Temps
        #: built from constants and drivers alone stay scalar or
        #: ``(1,)``-shaped and only *broadcast* against the K columns;
        #: callers that slice a temp column-wise (the cohort form's
        #: partial output writes) must consult this set, because slicing
        #: a narrow temp would misalign it.
        self._wide: set[str] = set()

    def _deps(self, expr: Expr) -> int:
        key = id(expr)
        cached = self._dep_memo.get(key)
        if cached is not None:
            return cached
        if isinstance(expr, Const):
            mask = 0
        elif isinstance(expr, Param):
            mask = _DEP_P
        elif isinstance(expr, Var):
            mask = _DEP_V
        elif isinstance(expr, State):
            mask = _DEP_S
        elif isinstance(expr, Ext):
            mask = self._deps(expr.operand)
        elif isinstance(expr, UnOp):
            mask = self._deps(expr.operand)
        elif isinstance(expr, BinOp):
            mask = self._deps(expr.lhs) | self._deps(expr.rhs)
        else:
            raise CompilationError(
                f"cannot compile node type {type(expr).__name__}"
            )
        self._dep_memo[key] = mask
        return mask

    def _assign(self, lines: list[str], values: dict[str, str], rhs: str) -> str:
        # Value numbering, per stream: every rhs is a pure expression
        # over earlier temps, so identical rhs share one temp.
        cached = values.get(rhs)
        if cached is not None:
            return cached
        name = f"t{self._counter}"
        self._counter += 1
        lines.append(f"    {name} = {rhs}")
        values[rhs] = name
        return name

    @staticmethod
    def _unary_rhs(op: str, operand: str) -> str:
        if op == "neg":
            return f"-{operand}"
        if op == "exp":
            return f"_pexp({operand})"
        if op == "log":
            return f"_plog({operand})"
        raise CompilationError(f"unknown unary operator {op!r}")

    @staticmethod
    def _binary_rhs(op: str, lhs: str, rhs: str) -> str:
        if op in ("+", "-", "*"):
            return f"{lhs} {op} {rhs}"
        if op == "/":
            return f"_pdiv({lhs}, {rhs})"
        if op == "min":
            return f"_pmin({lhs}, {rhs})"
        if op == "max":
            return f"_pmax({lhs}, {rhs})"
        raise CompilationError(f"unknown binary operator {op!r}")

    @staticmethod
    def _lookup(index: dict[str, int], name: str, kind: str) -> int:
        try:
            return index[name]
        except KeyError:
            raise CompilationError(f"unbound {kind} {name!r}") from None

    def _emit_pre(self, expr: Expr) -> str:
        """Emit ``expr`` (driver/parameter-only) into the precompute body."""
        if isinstance(expr, Ext):
            return self._emit_pre(expr.operand)
        key = id(expr)
        cached = self._pre_memo.get(key)
        if cached is not None:
            return cached
        if isinstance(expr, Const):
            rhs = repr(expr.value)
            wide = False
        elif isinstance(expr, Param):
            rhs = f"P[{self._lookup(self._param_index, expr.name, 'parameter')}]"
            wide = True
        elif isinstance(expr, Var):
            index = self._lookup(self._var_index, expr.name, "variable")
            rhs = f"VT[:, {index}:{index + 1}]"
            wide = False
        elif isinstance(expr, UnOp):
            operand = self._emit_pre(expr.operand)
            rhs = self._unary_rhs(expr.op, operand)
            wide = operand in self._wide
        elif isinstance(expr, BinOp):
            lhs = self._emit_pre(expr.lhs)
            rhs_operand = self._emit_pre(expr.rhs)
            rhs = self._binary_rhs(expr.op, lhs, rhs_operand)
            wide = lhs in self._wide or rhs_operand in self._wide
        else:
            raise CompilationError(
                f"cannot compile node type {type(expr).__name__}"
            )
        name = self._assign(self.pre_lines, self._pre_values, rhs)
        if wide:
            self._wide.add(name)
        self._pre_memo[key] = name
        return name

    def _row_of(self, hoisted: str) -> str:
        """The step-side temp extracting a hoisted temp's current row."""
        row = self._rows.get(hoisted)
        if row is None:
            index = len(self.hoisted)
            self.hoisted.append(hoisted)
            row = self._assign(
                self.step_lines, self._step_values, f"C[{index}][t]"
            )
            if hoisted in self._wide:
                self._wide.add(row)
            self._rows[hoisted] = row
        return row

    def emit(self, expr: Expr) -> str:
        """Emit assignments computing ``expr``; return its step temp."""
        if isinstance(expr, Ext):
            return self.emit(expr.operand)
        key = id(expr)
        cached = self._step_memo.get(key)
        if cached is not None:
            return cached
        mask = self._deps(expr)
        if mask & _DEP_V and not mask & _DEP_S:
            name = self._row_of(self._emit_pre(expr))
            self._step_memo[key] = name
            return name
        if isinstance(expr, Const):
            rhs = repr(expr.value)
            wide = False
        elif isinstance(expr, Param):
            rhs = f"P[{self._lookup(self._param_index, expr.name, 'parameter')}]"
            wide = True
        elif isinstance(expr, State):
            rhs = f"S[{self._lookup(self._state_index, expr.name, 'state')}]"
            wide = True
        elif isinstance(expr, UnOp):
            operand = self.emit(expr.operand)
            rhs = self._unary_rhs(expr.op, operand)
            wide = operand in self._wide
        elif isinstance(expr, BinOp):
            lhs = self.emit(expr.lhs)
            rhs_operand = self.emit(expr.rhs)
            rhs = self._binary_rhs(expr.op, lhs, rhs_operand)
            wide = lhs in self._wide or rhs_operand in self._wide
        else:
            raise CompilationError(
                f"cannot compile node type {type(expr).__name__}"
            )
        name = self._assign(self.step_lines, self._step_values, rhs)
        if wide:
            self._wide.add(name)
        self._step_memo[key] = name
        return name


def _generate_batched(
    exprs: Sequence[Expr],
    param_order: Sequence[str],
    var_order: Sequence[str],
    state_order: Sequence[str],
    name: str = "_compiled_batched",
) -> tuple[str, int]:
    """Batched two-phase source plus its hoisted-temporary count."""
    emitter = _BatchedEmitter(param_order, var_order, state_order)
    results = [emitter.emit(expr) for expr in exprs]
    returns = ", ".join(emitter.hoisted)
    if len(emitter.hoisted) == 1:
        returns += ","
    lines = [
        "def _precompute_batched(P, VT):",
        *emitter.pre_lines,
        f"    return ({returns})",
        "",
        f"def {name}(P, C, t, S):",
        *emitter.step_lines,
        f"    _out = _empty(({len(results)}, S.shape[1]))",
    ]
    for index, result in enumerate(results):
        lines.append(f"    _out[{index}] = {result}")
    lines.append("    return _out")
    return "\n".join(lines), len(emitter.hoisted)


def generate_batched_source(
    exprs: Sequence[Expr],
    param_order: Sequence[str],
    var_order: Sequence[str],
    state_order: Sequence[str],
    name: str = "_compiled_batched",
) -> str:
    """Generate NumPy source for a two-phase batched step kernel.

    Two functions are emitted: ``_precompute_batched(P, VT)`` evaluates
    every driver-dependent, state-independent temporary over the whole
    ``(T, n_vars)`` driver table, and ``f(P, C, t, S)`` computes one
    derivative row from the hoisted tuple ``C`` at row ``t`` plus the
    state-dependent remainder, writing one ``(K,)`` row per expression
    into a fresh ``(n_exprs, K)`` output (assignment broadcasting also
    covers constant-only equations, whose temporaries stay scalars).
    """
    source, __ = _generate_batched(
        exprs, param_order, var_order, state_order, name
    )
    return source


def compile_model_batched(
    exprs: Sequence[Expr],
    param_order: Sequence[str],
    var_order: Sequence[str],
    state_order: Sequence[str],
) -> CompiledBatchedModel:
    """Compile a batched step kernel over K parameter columns.

    The returned kernel agrees with K applications of the scalar
    interpreter column by column (to float tolerance -- libm and NumPy
    may differ in the last ulp of ``exp``/``log``), including protected
    edge cases and NaN propagation, so a diverging column behaves exactly
    as its scalar simulation would while leaving its neighbours intact.
    """
    source, n_hoisted = _generate_batched(
        exprs, param_order, var_order, state_order
    )
    namespace = _batched_namespace()
    code = compile(source, filename="<repro:_compiled_batched>", mode="exec")
    exec(code, namespace)  # noqa: S102 - generated from our own AST only
    return CompiledBatchedModel(
        precompute_fn=namespace["_precompute_batched"],
        step_fn=namespace["_compiled_batched"],
        source=source,
        n_hoisted=n_hoisted,
    )


def _batched_namespace() -> dict[str, Any]:
    """Exec namespace shared by the batched and cohort kernel forms."""
    return {
        "_empty": np.empty,
        "_pdiv": batched_protected_div,
        "_plog": batched_protected_log,
        "_pexp": batched_protected_exp,
        "_pmin": batched_min,
        "_pmax": batched_max,
    }


class _CohortEmitter(_BatchedEmitter):
    """A :class:`_BatchedEmitter` whose value tables span a whole cohort.

    One emitter lowers several structures in sequence into a *single*
    pair of precompute/step streams.  The per-stream value tables, the
    hoisted-temporary registry, and the temp counter persist across
    members, so a subexpression that is positionally identical in two
    members (same parameter/state/driver indices, same operators) hits
    the value-numbering table and is computed once over the full fused
    width.  Only the identity memos and the parameter index mapping are
    member-local: each member's ``param_order`` maps its own names onto
    the shared ``P`` rows, and expression objects must never inherit a
    temp emitted under another member's parameter mapping.
    """

    def begin_member(self, param_order: Sequence[str]) -> None:
        """Switch to the next member's parameter mapping."""
        self._param_index = {name: i for i, name in enumerate(param_order)}
        self._pre_memo = {}
        self._step_memo = {}
        self._dep_memo = {}


def _merge_lane_runs(temps: Sequence[str]) -> list[tuple[int, int, str]]:
    """Collapse per-member output temps into ``(start, stop, temp)`` runs.

    Adjacent members whose equation for a state lowered to the *same*
    temp (identical structure after CSE) share one slice write.
    """
    runs: list[tuple[int, int, str]] = []
    for member, temp in enumerate(temps):
        if runs and runs[-1][2] == temp and runs[-1][1] == member:
            runs[-1] = (runs[-1][0], member + 1, temp)
        else:
            runs.append((member, member + 1, temp))
    return runs


def _generate_cohort(
    members: Sequence[tuple[Sequence[Expr], Sequence[str]]],
    var_order: Sequence[str],
    state_order: Sequence[str],
    lanes_per_member: int,
    name: str = "_compiled_cohort",
) -> tuple[str, int]:
    """Fused cohort source plus its hoisted-temporary count.

    ``members`` holds one ``(exprs, param_order)`` pair per structure;
    every member must supply one expression per state of
    ``state_order``.  The generated step function writes member ``m``'s
    results into lanes ``[m * K, (m + 1) * K)`` of the output; temps
    that stay narrow (constant- or driver-only) are assigned unsliced
    and broadcast into the slice.
    """
    if not members:
        raise CompilationError("a cohort needs at least one member")
    if lanes_per_member < 1:
        raise CompilationError("lanes_per_member must be >= 1")
    n_states = len(state_order)
    emitter = _CohortEmitter((), var_order, state_order)
    results: list[list[str]] = []
    for exprs, param_order in members:
        if len(exprs) != n_states:
            raise CompilationError(
                f"cohort member has {len(exprs)} equations, "
                f"cohort states are {n_states}"
            )
        emitter.begin_member(param_order)
        results.append([emitter.emit(expr) for expr in exprs])
    returns = ", ".join(emitter.hoisted)
    if len(emitter.hoisted) == 1:
        returns += ","
    width = len(members) * lanes_per_member
    lines = [
        "def _precompute_batched(P, VT):",
        *emitter.pre_lines,
        f"    return ({returns})",
        "",
        f"def {name}(P, C, t, S):",
        *emitter.step_lines,
        f"    _out = _empty(({n_states}, S.shape[1]))",
    ]
    for state_index in range(n_states):
        temps = [member_results[state_index] for member_results in results]
        for start, stop, temp in _merge_lane_runs(temps):
            if start == 0 and stop == len(members):
                lines.append(f"    _out[{state_index}] = {temp}")
                continue
            lo = start * lanes_per_member
            hi = stop * lanes_per_member
            if temp in emitter._wide:
                lines.append(
                    f"    _out[{state_index}, {lo}:{hi}] = {temp}[{lo}:{hi}]"
                )
            else:
                lines.append(f"    _out[{state_index}, {lo}:{hi}] = {temp}")
    lines.append("    return _out")
    return "\n".join(lines), len(emitter.hoisted)


def generate_cohort_source(
    members: Sequence[tuple[Sequence[Expr], Sequence[str]]],
    var_order: Sequence[str],
    state_order: Sequence[str],
    lanes_per_member: int,
    name: str = "_compiled_cohort",
) -> str:
    """Generate NumPy source for a fused multi-structure cohort kernel."""
    source, __ = _generate_cohort(
        members, var_order, state_order, lanes_per_member, name
    )
    return source


def compile_model_cohort(
    members: Sequence[tuple[Sequence[Expr], Sequence[str]]],
    var_order: Sequence[str],
    state_order: Sequence[str],
    lanes_per_member: int,
) -> CompiledCohortKernel:
    """Compile M structures into one fused cohort step kernel.

    The fused kernel agrees lane for lane with each member's own
    batched kernel bit for bit: every emitted operation is elementwise
    over the lane axis, so evaluating a member's subexpressions over
    the full fused width (including lanes it does not own) changes
    nothing about the values computed *in* its lanes, and the shared
    temps produced by cross-member CSE hold, per lane, exactly what the
    member's standalone emission would have computed there.  Lanes a
    member does not own -- other members' lanes and padding -- never
    reach its output rows.
    """
    source, n_hoisted = _generate_cohort(
        members, var_order, state_order, lanes_per_member
    )
    namespace = _batched_namespace()
    code = compile(source, filename="<repro:_compiled_cohort>", mode="exec")
    exec(code, namespace)  # noqa: S102 - generated from our own AST only
    return CompiledCohortKernel(
        precompute_fn=namespace["_precompute_batched"],
        step_fn=namespace["_compiled_cohort"],
        source=source,
        n_hoisted=n_hoisted,
        n_members=len(members),
        lanes_per_member=lanes_per_member,
        n_params=max(len(param_order) for __, param_order in members),
        n_states=len(state_order),
    )


@dataclass
class KernelCacheStats:
    """Hit/miss/eviction counters of a kernel cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def publish(self, registry: Any, prefix: str = "kernel_cache") -> None:
        """Publish the counters into a :class:`repro.obs.MetricsRegistry`."""
        registry.counter(f"{prefix}.hits").inc(self.hits)
        registry.counter(f"{prefix}.misses").inc(self.misses)
        registry.counter(f"{prefix}.evictions").inc(self.evictions)


class KernelCache:
    """A bounded LRU of compiled kernels, keyed by model structure.

    Compiling a step function costs orders of magnitude more than a
    dictionary lookup, and evolutionary search re-proposes the same
    structures constantly -- so kernels are memoised per structure and
    the least recently *used* (not oldest) entry is evicted at capacity.
    Also used per-evaluator for scalar kernel sharing; the process-global
    instance is :data:`KERNEL_CACHE`.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("KernelCache needs max_entries >= 1")
        self.max_entries = max_entries
        self.stats = KernelCacheStats()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """Look up a kernel, refreshing its recency; None on miss."""
        try:
            kernel = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return kernel

    def put(self, key: Hashable, kernel: Any) -> None:
        """Insert a kernel, evicting the least recently used at capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = kernel
            return
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = kernel

    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached kernel for ``key``, building it on a miss."""
        kernel = self.get(key)
        if kernel is None:
            kernel = builder()
            self.put(key, kernel)
        return kernel

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def __getstate__(self) -> dict:
        # Compiled kernels are exec-generated closures and unpicklable;
        # ship the configuration and the counters (a checkpoint round-trip
        # must not zero hit/miss/eviction statistics) and let the receiving
        # process rebuild entries on demand.
        return {"max_entries": self.max_entries, "stats": self.stats}

    def __setstate__(self, state: dict) -> None:
        self.max_entries = state.get("max_entries", 512)
        self.stats = state.get("stats") or KernelCacheStats()
        self._entries = OrderedDict()


#: Process-global kernel cache shared by every model and evaluator in
#: this process (worker processes each grow their own after pickling).
KERNEL_CACHE = KernelCache(max_entries=512)
