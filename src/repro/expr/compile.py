"""Runtime compilation of expression ASTs to Python functions.

The paper evaluates evolved models with *runtime compilation* (tree ->
source -> G++ -> dynamically loaded object).  We reproduce the same code
path in Python: the AST is lowered to straight-line Python source (one
assignment per node, so protected-operator guards never duplicate work),
compiled once with :func:`compile`, and the resulting function is reused
for every time step of every simulation.

Compiled functions take positional tuples rather than name lookups --
the orderings of parameters, driver variables, and states are baked into
the generated source, which is what makes the compiled path fast.

The compiler and the reference interpreter in :mod:`repro.expr.evaluate`
implement identical protected semantics; the property-based test suite
checks them against each other on random expressions.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.expr.ast import BinOp, Const, Expr, Ext, Param, State, UnOp, Var
from repro.expr.evaluate import DIV_EPS, EXP_MAX, LOG_EPS

#: Signature of a compiled single-expression function.
CompiledExpr = Callable[[Sequence[float], Sequence[float], Sequence[float]], float]

#: Signature of a compiled multi-output (model step) function.
CompiledModel = Callable[
    [Sequence[float], Sequence[float], Sequence[float]], tuple[float, ...]
]


class CompilationError(ValueError):
    """Raised when an expression cannot be lowered to source."""


class _Emitter:
    """Lowers expression trees to straight-line Python assignments."""

    def __init__(
        self,
        param_order: Sequence[str],
        var_order: Sequence[str],
        state_order: Sequence[str],
    ) -> None:
        self._param_index = {name: i for i, name in enumerate(param_order)}
        self._var_index = {name: i for i, name in enumerate(var_order)}
        self._state_index = {name: i for i, name in enumerate(state_order)}
        self.lines: list[str] = []
        self._counter = 0
        self._memo: dict[int, str] = {}

    def _fresh(self) -> str:
        name = f"t{self._counter}"
        self._counter += 1
        return name

    def _assign(self, rhs: str) -> str:
        name = self._fresh()
        self.lines.append(f"    {name} = {rhs}")
        return name

    def emit(self, expr: Expr) -> str:
        """Emit assignments computing ``expr``; return its temp name."""
        memo_key = id(expr)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        name = self._emit(expr)
        self._memo[memo_key] = name
        return name

    def _emit(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            return self._assign(repr(expr.value))
        if isinstance(expr, Param):
            index = self._lookup(self._param_index, expr.name, "parameter")
            return self._assign(f"P[{index}]")
        if isinstance(expr, Var):
            index = self._lookup(self._var_index, expr.name, "variable")
            return self._assign(f"V[{index}]")
        if isinstance(expr, State):
            index = self._lookup(self._state_index, expr.name, "state")
            return self._assign(f"S[{index}]")
        if isinstance(expr, Ext):
            return self.emit(expr.operand)
        if isinstance(expr, UnOp):
            operand = self.emit(expr.operand)
            return self._emit_unary(expr.op, operand)
        if isinstance(expr, BinOp):
            lhs = self.emit(expr.lhs)
            rhs = self.emit(expr.rhs)
            return self._emit_binary(expr.op, lhs, rhs)
        raise CompilationError(f"cannot compile node type {type(expr).__name__}")

    @staticmethod
    def _lookup(index: dict[str, int], name: str, kind: str) -> int:
        try:
            return index[name]
        except KeyError:
            raise CompilationError(f"unbound {kind} {name!r}") from None

    def _emit_unary(self, op: str, operand: str) -> str:
        if op == "neg":
            return self._assign(f"-{operand}")
        if op == "exp":
            clamped = self._assign(
                f"{operand} if {operand} < {EXP_MAX!r} else {EXP_MAX!r}"
            )
            return self._assign(f"_exp({clamped})")
        if op == "log":
            magnitude = self._assign(
                f"{operand} if {operand} >= 0.0 else -{operand}"
            )
            return self._assign(
                f"_log({magnitude}) if {magnitude} >= {LOG_EPS!r} else 0.0"
            )
        raise CompilationError(f"unknown unary operator {op!r}")

    def _emit_binary(self, op: str, lhs: str, rhs: str) -> str:
        if op in ("+", "-", "*"):
            return self._assign(f"{lhs} {op} {rhs}")
        if op == "/":
            magnitude = self._assign(f"{rhs} if {rhs} >= 0.0 else -{rhs}")
            return self._assign(
                f"{lhs} / {rhs} if {magnitude} >= {DIV_EPS!r} else 0.0"
            )
        if op == "min":
            return self._assign(f"{lhs} if {lhs} < {rhs} else {rhs}")
        if op == "max":
            return self._assign(f"{lhs} if {lhs} > {rhs} else {rhs}")
        raise CompilationError(f"unknown binary operator {op!r}")


def generate_source(
    exprs: Sequence[Expr],
    param_order: Sequence[str],
    var_order: Sequence[str],
    state_order: Sequence[str],
    name: str = "_compiled",
) -> str:
    """Generate Python source for a function computing ``exprs``.

    The generated function has the signature ``f(P, V, S)`` and returns a
    tuple with one value per expression (or a bare float for a single
    expression, see :func:`compile_expr`).
    """
    emitter = _Emitter(param_order, var_order, state_order)
    results = [emitter.emit(expr) for expr in exprs]
    header = f"def {name}(P, V, S):"
    returns = "    return (" + ", ".join(results) + ("," if len(results) == 1 else "") + ")"
    return "\n".join([header, *emitter.lines, returns])


def _compile_source(source: str, name: str) -> Callable:
    namespace = {"_exp": math.exp, "_log": math.log}
    code = compile(source, filename=f"<repro:{name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - generated from our own AST only
    return namespace[name]


def compile_expr(
    expr: Expr,
    param_order: Sequence[str],
    var_order: Sequence[str] = (),
    state_order: Sequence[str] = (),
) -> CompiledExpr:
    """Compile a single expression to a function ``f(P, V, S) -> float``."""
    source = generate_source([expr], param_order, var_order, state_order)
    tupled = _compile_source(source, "_compiled")

    def scalar(P: Sequence[float], V: Sequence[float] = (), S: Sequence[float] = ()) -> float:
        return tupled(P, V, S)[0]

    scalar.source = source  # type: ignore[attr-defined]
    return scalar


def compile_model(
    exprs: Sequence[Expr],
    param_order: Sequence[str],
    var_order: Sequence[str],
    state_order: Sequence[str],
) -> CompiledModel:
    """Compile several expressions into one function returning a tuple.

    This is the *model step* form used by the dynamic-system simulator:
    one output per state derivative, all sharing the emitted temporaries.
    """
    source = generate_source(exprs, param_order, var_order, state_order)
    func = _compile_source(source, "_compiled")
    func.source = source  # type: ignore[attr-defined]
    return func
