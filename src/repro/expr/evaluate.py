"""Reference tree-walking interpreter for expression ASTs.

This module defines the *protected* operator semantics that the whole
library relies on; :mod:`repro.expr.compile` generates code that is
behaviourally identical (a property verified by the test suite).

Protected semantics
-------------------
* ``a / b`` returns ``0.0`` when ``|b| < DIV_EPS`` (avoids division blow-ups
  inside evolved models).
* ``log(x)`` returns ``log(|x|)`` and ``0.0`` when ``|x| < LOG_EPS``.
* ``exp(x)`` clamps its argument to ``EXP_MAX`` to avoid overflow.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.expr.ast import BinOp, Const, Expr, Ext, Param, State, UnOp, Var

#: Divisor magnitudes below this evaluate protected division to zero.
DIV_EPS = 1e-12

#: Argument magnitudes below this evaluate protected log to zero.
LOG_EPS = 1e-12

#: Upper clamp on the argument of the protected exponential.
EXP_MAX = 60.0


class EvaluationError(KeyError):
    """Raised when an expression references an unbound name."""


def protected_div(numerator: float, denominator: float) -> float:
    """Protected division: zero when the denominator is (near) zero."""
    if abs(denominator) < DIV_EPS:
        return 0.0
    return numerator / denominator


def protected_log(value: float) -> float:
    """Protected natural log: ``log(|x|)``, zero near zero."""
    magnitude = abs(value)
    if magnitude < LOG_EPS:
        return 0.0
    return math.log(magnitude)


def protected_exp(value: float) -> float:
    """Protected exponential with a clamped argument."""
    if value > EXP_MAX:
        value = EXP_MAX
    return math.exp(value)


def batched_protected_div(numerator, denominator):
    """Vectorised :func:`protected_div` over NumPy arrays.

    Matches the scalar interpreter exactly, element by element: wherever
    ``|denominator| < DIV_EPS`` the result is 0.0 (whatever the
    numerator, including NaN); everywhere else it is the IEEE quotient,
    so NaN/inf operands propagate the same way the scalar path does.
    """
    denominator = np.asarray(denominator)
    near_zero = np.abs(denominator) < DIV_EPS
    safe = np.where(near_zero, 1.0, denominator)
    return np.where(near_zero, 0.0, np.asarray(numerator) / safe)


def batched_protected_log(value):
    """Vectorised :func:`protected_log`: ``log(|x|)``, zero near zero.

    Near-zero magnitudes are replaced by 1.0 before the log, whose exact
    result is 0.0 -- one ``where`` instead of masking the output too.
    """
    magnitude = np.abs(np.asarray(value))
    return np.log(np.where(magnitude < LOG_EPS, 1.0, magnitude))


def batched_protected_exp(value):
    """Vectorised :func:`protected_exp` with a clamped argument.

    ``np.minimum`` replicates the interpreter's ``if value > EXP_MAX``
    test, including NaN: a NaN argument propagates (``NaN > EXP_MAX`` is
    false in the interpreter, and ``np.minimum`` propagates NaN) instead
    of being clamped.
    """
    return np.exp(np.minimum(value, EXP_MAX))


def batched_min(lhs, rhs):
    """Vectorised Python ``min``: ``rhs if rhs < lhs else lhs``.

    Spelled as the exact comparison Python's ``min`` performs so NaN
    operands select the same side the scalar interpreter would.
    """
    return np.where(np.less(rhs, lhs), rhs, lhs)


def batched_max(lhs, rhs):
    """Vectorised Python ``max``: ``rhs if rhs > lhs else lhs``."""
    return np.where(np.greater(rhs, lhs), rhs, lhs)


def evaluate(
    expr: Expr,
    params: Mapping[str, float] | None = None,
    variables: Mapping[str, float] | None = None,
    states: Mapping[str, float] | None = None,
) -> float:
    """Evaluate ``expr`` under the given bindings.

    Args:
        expr: Expression to evaluate.
        params: Values for :class:`~repro.expr.ast.Param` nodes.
        variables: Values for :class:`~repro.expr.ast.Var` nodes.
        states: Values for :class:`~repro.expr.ast.State` nodes.

    Returns:
        The evaluated value as a float.

    Raises:
        EvaluationError: If a referenced name has no binding.
    """
    params = params or {}
    variables = variables or {}
    states = states or {}
    return _eval(expr, params, variables, states)


def _eval(
    expr: Expr,
    params: Mapping[str, float],
    variables: Mapping[str, float],
    states: Mapping[str, float],
) -> float:
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Param):
        try:
            return float(params[expr.name])
        except KeyError:
            raise EvaluationError(f"unbound parameter {expr.name!r}") from None
    if isinstance(expr, Var):
        try:
            return float(variables[expr.name])
        except KeyError:
            raise EvaluationError(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, State):
        try:
            return float(states[expr.name])
        except KeyError:
            raise EvaluationError(f"unbound state {expr.name!r}") from None
    if isinstance(expr, Ext):
        return _eval(expr.operand, params, variables, states)
    if isinstance(expr, UnOp):
        value = _eval(expr.operand, params, variables, states)
        if expr.op == "neg":
            return -value
        if expr.op == "log":
            return protected_log(value)
        if expr.op == "exp":
            return protected_exp(value)
        raise AssertionError(f"unreachable unary op {expr.op!r}")
    if isinstance(expr, BinOp):
        lhs = _eval(expr.lhs, params, variables, states)
        rhs = _eval(expr.rhs, params, variables, states)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "/":
            return protected_div(lhs, rhs)
        if expr.op == "min":
            return min(lhs, rhs)
        if expr.op == "max":
            return max(lhs, rhs)
        raise AssertionError(f"unreachable binary op {expr.op!r}")
    raise TypeError(f"cannot evaluate node of type {type(expr).__name__}")
