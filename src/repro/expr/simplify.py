"""Algebraic simplification and canonicalisation of expression ASTs.

The GP tree cache (:mod:`repro.gp.cache`) keys evaluations on a *canonical*
form of the expression, so that algebraically identical individuals share a
cache slot.  The paper (Section III-D) notes that simplifying trees before
evaluation raises the cache hit rate; this module provides both the
semantics-preserving rewriter (:func:`simplify`) and the order-insensitive
key (:func:`canonical_key`).

Simplification is conservative: every rewrite preserves the protected
operator semantics of :mod:`repro.expr.evaluate` exactly (verified by
property-based tests), so a simplified tree can be evaluated in place of the
original.
"""

from __future__ import annotations

import math

from repro.expr.ast import (
    COMMUTATIVE_OPS,
    BinOp,
    Const,
    Expr,
    Ext,
    Param,
    State,
    UnOp,
    Var,
)
from repro.expr.evaluate import (
    protected_div,
    protected_exp,
    protected_log,
)


def simplify(expr: Expr) -> Expr:
    """Return a semantics-preserving simplified form of ``expr``.

    Applied rewrites: constant folding, additive/multiplicative identity
    elimination, double negation, ``Ext`` marker stripping (they are
    identities), and -- only where the dropped operand is provably finite
    (:func:`_finite_safe`) -- multiplication by zero and ``x - x -> 0``.
    Zero signs may differ (``x * 0`` can be ``-0.0``); nothing downstream
    distinguishes ``-0.0`` from ``0.0``.
    """
    if isinstance(expr, Ext):
        return simplify(expr.operand)

    kids = expr.children()
    if not kids:
        return expr

    simplified = tuple(simplify(child) for child in kids)
    node = expr.with_children(simplified)

    if isinstance(node, UnOp):
        return _simplify_unary(node)
    if isinstance(node, BinOp):
        return _simplify_binary(node)
    return node


def _simplify_unary(node: UnOp) -> Expr:
    operand = node.operand
    if isinstance(operand, Const):
        if node.op == "neg":
            return Const(-operand.value)
        if node.op == "log":
            return Const(protected_log(operand.value))
        if node.op == "exp":
            return Const(protected_exp(operand.value))
    if node.op == "neg" and isinstance(operand, UnOp) and operand.op == "neg":
        return operand.operand
    return node


def _simplify_binary(node: BinOp) -> Expr:
    lhs, rhs = node.lhs, node.rhs
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        return Const(_fold_const(node.op, lhs.value, rhs.value))

    if node.op == "+":
        if _is_const(lhs, 0.0):
            return rhs
        if _is_const(rhs, 0.0):
            return lhs
    elif node.op == "-":
        if _is_const(rhs, 0.0):
            return lhs
        if lhs == rhs and _finite_safe(lhs):
            return Const(0.0)
    elif node.op == "*":
        if _is_const(lhs, 1.0):
            return rhs
        if _is_const(rhs, 1.0):
            return lhs
        if _is_const(lhs, 0.0) and _finite_safe(rhs):
            return Const(0.0)
        if _is_const(rhs, 0.0) and _finite_safe(lhs):
            return Const(0.0)
    elif node.op == "/":
        if _is_const(rhs, 1.0):
            return lhs
        if _is_const(lhs, 0.0) and _finite_safe(rhs):
            return Const(0.0)
    elif node.op in ("min", "max"):
        if lhs == rhs:
            return lhs
    return node


def _fold_const(op: str, lhs: float, rhs: float) -> float:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        return protected_div(lhs, rhs)
    if op == "min":
        return min(lhs, rhs)
    if op == "max":
        return max(lhs, rhs)
    raise AssertionError(f"unreachable binary op {op!r}")


def _is_const(expr: Expr, value: float) -> bool:
    return isinstance(expr, Const) and expr.value == value


def _finite_safe(expr: Expr) -> bool:
    """Whether ``expr`` evaluates to a finite value for every *finite*
    leaf binding (the engine only ever binds finite values).

    Guards the annihilating rewrites (``x * 0 -> 0``, ``x - x -> 0``,
    ``0 / x -> 0``): they change semantics when the dropped operand can
    reach inf or NaN internally (``inf * 0`` is NaN, ``inf - inf`` is
    NaN, ``0 / NaN`` is NaN).  Leaves are finite by contract; neg, the
    protected log/exp, and min/max preserve finiteness; ``+``, ``-``,
    ``*``, ``/`` can overflow to inf and are not assumed safe.
    """
    if isinstance(expr, Const):
        return math.isfinite(expr.value)
    if isinstance(expr, (Param, State, Var)):
        return True
    if isinstance(expr, Ext):
        return _finite_safe(expr.operand)
    if isinstance(expr, UnOp):
        return _finite_safe(expr.operand)
    if isinstance(expr, BinOp) and expr.op in ("min", "max"):
        return _finite_safe(expr.lhs) and _finite_safe(expr.rhs)
    return False


def canonical_key(expr: Expr) -> str:
    """Return a canonical string key for ``expr``.

    The key is invariant under operand order of commutative operators and
    under ``Ext`` markers, and is computed on the simplified tree, so that
    algebraically equal-by-rewrite expressions map to the same key.  It is
    *not* a full decision procedure for algebraic equality -- it only needs
    to be sound (equal keys imply equal semantics), which it is because each
    step preserves semantics.
    """
    return _key(simplify(expr))


def _key(expr: Expr) -> str:
    if isinstance(expr, Ext):
        return _key(expr.operand)
    if isinstance(expr, BinOp):
        if expr.op in COMMUTATIVE_OPS:
            operands = sorted(_flatten(expr, expr.op))
            return f"({expr.op} {' '.join(operands)})"
        return f"({expr.op} {_key(expr.lhs)} {_key(expr.rhs)})"
    if isinstance(expr, UnOp):
        return f"({expr.op} {_key(expr.operand)})"
    if isinstance(expr, Const):
        return format(expr.value, ".12g")
    return f"{type(expr).__name__}:{expr}"


def _flatten(expr: BinOp, op: str) -> list[str]:
    """Collect keys of a maximal same-operator commutative subtree."""
    keys: list[str] = []
    for side in (expr.lhs, expr.rhs):
        inner = side
        while isinstance(inner, Ext):
            inner = inner.operand
        if isinstance(inner, BinOp) and inner.op == op:
            keys.extend(_flatten(inner, op))
        else:
            keys.append(_key(inner))
    return keys
