"""A small infix parser for writing process equations as strings.

The concrete syntax mirrors how the paper writes processes:

* ``+ - * /`` with usual precedence, parentheses, unary minus;
* function calls ``min(a, b, ...)``, ``max(a, b, ...)``, ``log(x)``,
  ``exp(x)``;
* extension-point markers ``{expr}@Ext1`` (the paper's ``{...} Ext1``);
* numbers become :class:`~repro.expr.ast.Const` nodes;
* identifiers are classified by the caller-provided name sets: members of
  ``variables`` become :class:`Var`, members of ``states`` become
  :class:`State`, everything else becomes :class:`Param`.

Example::

    parse("BPhy * (CUA * Vlgt - {CBRA}@Ext5)",
          variables={"Vlgt"}, states={"BPhy"})
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.expr import ast
from repro.expr.ast import Const, Expr, Ext, Param, State, Var

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+(?:[eE][-+]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<symbol>[-+*/(),{}@]))"
)

_FUNCTIONS = {"min", "max", "log", "exp"}


class ParseError(ValueError):
    """Raised on malformed input strings."""


def tokenize(text: str) -> list[tuple[str, str]]:
    """Split ``text`` into ``(kind, value)`` tokens."""
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].lstrip()
            if not remainder:
                break
            raise ParseError(f"unexpected character {remainder[0]!r} in {text!r}")
        position = match.end()
        if match.group("number") is not None:
            tokens.append(("number", match.group("number")))
        elif match.group("name") is not None:
            tokens.append(("name", match.group("name")))
        else:
            tokens.append(("symbol", match.group("symbol")))
    return tokens


class _Parser:
    def __init__(
        self,
        tokens: list[tuple[str, str]],
        variables: frozenset[str],
        states: frozenset[str],
    ) -> None:
        self._tokens = tokens
        self._pos = 0
        self._variables = variables
        self._states = states

    def _peek(self) -> tuple[str, str] | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _advance(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._pos += 1
        return token

    def _expect(self, symbol: str) -> None:
        token = self._advance()
        if token != ("symbol", symbol):
            raise ParseError(f"expected {symbol!r}, found {token[1]!r}")

    def parse(self) -> Expr:
        expr = self._expr()
        leftover = self._peek()
        if leftover is not None:
            raise ParseError(f"trailing input starting at {leftover[1]!r}")
        return expr

    def _expr(self) -> Expr:
        node = self._term()
        while self._peek() in (("symbol", "+"), ("symbol", "-")):
            __, op = self._advance()
            rhs = self._term()
            node = ast.BinOp(op, node, rhs)
        return node

    def _term(self) -> Expr:
        node = self._factor()
        while self._peek() in (("symbol", "*"), ("symbol", "/")):
            __, op = self._advance()
            rhs = self._factor()
            node = ast.BinOp(op, node, rhs)
        return node

    def _factor(self) -> Expr:
        token = self._peek()
        if token == ("symbol", "-"):
            self._advance()
            return ast.neg(self._factor())
        return self._atom()

    def _atom(self) -> Expr:
        kind, value = self._advance()
        if kind == "number":
            return Const(float(value))
        if kind == "name":
            if value in _FUNCTIONS:
                return self._call(value)
            return self._identifier(value)
        if (kind, value) == ("symbol", "("):
            node = self._expr()
            self._expect(")")
            return node
        if (kind, value) == ("symbol", "{"):
            node = self._expr()
            self._expect("}")
            self._expect("@")
            name_kind, name = self._advance()
            if name_kind != "name":
                raise ParseError(f"expected extension name after '@', found {name!r}")
            return Ext(name, node)
        raise ParseError(f"unexpected token {value!r}")

    def _call(self, function: str) -> Expr:
        self._expect("(")
        arguments = [self._expr()]
        while self._peek() == ("symbol", ","):
            self._advance()
            arguments.append(self._expr())
        self._expect(")")
        if function == "min":
            return ast.minimum(*arguments)
        if function == "max":
            return ast.maximum(*arguments)
        if len(arguments) != 1:
            raise ParseError(f"{function} takes exactly one argument")
        if function == "log":
            return ast.log(arguments[0])
        return ast.exp(arguments[0])

    def _identifier(self, name: str) -> Expr:
        if name in self._variables:
            return Var(name)
        if name in self._states:
            return State(name)
        return Param(name)


def parse(
    text: str,
    variables: Iterable[str] = (),
    states: Iterable[str] = (),
) -> Expr:
    """Parse ``text`` into an expression AST.

    Args:
        text: The equation in infix syntax.
        variables: Identifiers to classify as driver variables.
        states: Identifiers to classify as state variables.
    """
    parser = _Parser(tokenize(text), frozenset(variables), frozenset(states))
    return parser.parse()
