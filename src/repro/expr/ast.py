"""Expression AST for dynamic-process models.

Expressions are immutable trees built from a small vocabulary:

* :class:`Const` -- a numeric literal.
* :class:`Param` -- a named constant parameter (``CUA``, ``R_3``, ...) whose
  value is supplied at evaluation time from a parameter assignment.
* :class:`Var` -- a named exogenous driver variable (``Vtmp``, ``Vlgt``, ...)
  whose value is read from the observed data at the current time step.
* :class:`State` -- a named state variable of the dynamic system
  (``BPhy``, ``BZoo``).
* :class:`BinOp` / :class:`UnOp` -- operators with *protected* semantics
  (see :mod:`repro.expr.evaluate`), so that any expression evaluates to a
  finite float for finite inputs.
* :class:`Ext` -- a transparent marker wrapping a subexpression.  Markers
  carry the name of a revision extension point (``Ext1`` ... ``Ext9``) and
  have identity semantics; they exist so that the TAG layer can locate the
  subprocesses that prior knowledge declares revisable.

The module deliberately contains no evaluation logic; see
:mod:`repro.expr.evaluate` (interpreter) and :mod:`repro.expr.compile`
(runtime compilation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

#: Binary operators understood by the evaluator and compiler.
BINARY_OPS = ("+", "-", "*", "/", "min", "max")

#: Unary operators understood by the evaluator and compiler.
UNARY_OPS = ("neg", "log", "exp")

#: Operators for which operand order does not matter (used by
#: canonicalisation when producing cache keys).
COMMUTATIVE_OPS = frozenset({"+", "*", "min", "max"})


class ExprError(ValueError):
    """Raised for structurally invalid expressions."""


@dataclass(frozen=True)
class Expr:
    """Base class of all expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        """Return the child expressions of this node."""
        return ()

    def with_children(self, children: tuple["Expr", ...]) -> "Expr":
        """Return a copy of this node with ``children`` substituted."""
        if children:
            raise ExprError(f"{type(self).__name__} takes no children")
        return self

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants in pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    @property
    def size(self) -> int:
        """Number of nodes in the expression tree."""
        return sum(1 for _ in self.walk())

    @property
    def depth(self) -> int:
        """Height of the expression tree (a leaf has depth 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth for child in kids)


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", float(self.value))

    def __str__(self) -> str:
        return format(self.value, "g")


@dataclass(frozen=True)
class Param(Expr):
    """A named constant parameter, bound by a parameter assignment."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Var(Expr):
    """A named exogenous (driver) variable read from observed data."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class State(Expr):
    """A named state variable of the dynamic system."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation with protected semantics."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ExprError(f"unknown binary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def with_children(self, children: tuple[Expr, ...]) -> "BinOp":
        lhs, rhs = children
        return BinOp(self.op, lhs, rhs)

    def __str__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.lhs}, {self.rhs})"
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation with protected semantics."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ExprError(f"unknown unary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expr, ...]) -> "UnOp":
        (operand,) = children
        return UnOp(self.op, operand)

    def __str__(self) -> str:
        if self.op == "neg":
            return f"(-{self.operand})"
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class Ext(Expr):
    """A transparent extension-point marker around a subprocess.

    ``name`` identifies the revision point (e.g. ``"Ext1"``).  Evaluation
    treats the marker as the identity function.
    """

    name: str
    operand: Expr = field(default_factory=lambda: Const(0.0))

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expr, ...]) -> "Ext":
        (operand,) = children
        return Ext(self.name, operand)

    def __str__(self) -> str:
        return f"{{{self.operand}}}@{self.name}"


def add(lhs: Expr, rhs: Expr) -> BinOp:
    """Build ``lhs + rhs``."""
    return BinOp("+", lhs, rhs)


def sub(lhs: Expr, rhs: Expr) -> BinOp:
    """Build ``lhs - rhs``."""
    return BinOp("-", lhs, rhs)


def mul(lhs: Expr, rhs: Expr) -> BinOp:
    """Build ``lhs * rhs``."""
    return BinOp("*", lhs, rhs)


def div(lhs: Expr, rhs: Expr) -> BinOp:
    """Build the protected division ``lhs / rhs``."""
    return BinOp("/", lhs, rhs)


def minimum(*operands: Expr) -> Expr:
    """Build an n-ary minimum as a chain of binary ``min`` nodes."""
    return _fold("min", operands)


def maximum(*operands: Expr) -> Expr:
    """Build an n-ary maximum as a chain of binary ``max`` nodes."""
    return _fold("max", operands)


def _fold(op: str, operands: tuple[Expr, ...]) -> Expr:
    if not operands:
        raise ExprError(f"{op} requires at least one operand")
    result = operands[0]
    for operand in operands[1:]:
        result = BinOp(op, result, operand)
    return result


def exp(operand: Expr) -> UnOp:
    """Build the protected exponential of ``operand``."""
    return UnOp("exp", operand)


def log(operand: Expr) -> UnOp:
    """Build the protected natural logarithm of ``operand``."""
    return UnOp("log", operand)


def neg(operand: Expr) -> UnOp:
    """Build the negation of ``operand``."""
    return UnOp("neg", operand)


def strip_ext(expr: Expr) -> Expr:
    """Return ``expr`` with every :class:`Ext` marker removed."""
    if isinstance(expr, Ext):
        return strip_ext(expr.operand)
    kids = expr.children()
    if not kids:
        return expr
    new_kids = tuple(strip_ext(child) for child in kids)
    if new_kids == kids:
        return expr
    return expr.with_children(new_kids)


def free_params(expr: Expr) -> set[str]:
    """Return the names of all :class:`Param` nodes in ``expr``."""
    return {node.name for node in expr.walk() if isinstance(node, Param)}


def free_vars(expr: Expr) -> set[str]:
    """Return the names of all :class:`Var` nodes in ``expr``."""
    return {node.name for node in expr.walk() if isinstance(node, Var)}


def free_states(expr: Expr) -> set[str]:
    """Return the names of all :class:`State` nodes in ``expr``."""
    return {node.name for node in expr.walk() if isinstance(node, State)}


def ext_points(expr: Expr) -> dict[str, Ext]:
    """Return a mapping from extension-point name to its marker node."""
    points: dict[str, Ext] = {}
    for node in expr.walk():
        if isinstance(node, Ext):
            if node.name in points:
                raise ExprError(f"duplicate extension point {node.name!r}")
            points[node.name] = node
    return points


def substitute(expr: Expr, replacements: dict[str, Expr]) -> Expr:
    """Replace :class:`Param` nodes by name with the given expressions.

    Useful for inlining intermediate definitions when building seed models.
    """
    if isinstance(expr, Param) and expr.name in replacements:
        return replacements[expr.name]
    kids = expr.children()
    if not kids:
        return expr
    new_kids = tuple(substitute(child, replacements) for child in kids)
    if new_kids == kids:
        return expr
    return expr.with_children(new_kids)
