"""Variable selectivity among the best revised models (paper Figure 9).

Selectivity of a variable is the percentage of the k best models whose
*revisions* introduce that variable.  For GMR individuals the revisions
are read directly off the derivation tree: every beta-tree name encodes
its extension point, operator, and operand
(``conn:Ext5:*:Vtmp``, ``ext:Ext1:/:Valk``, ...).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.gp.individual import Individual
from repro.gp.knowledge import RANDOM_OPERAND


@dataclass(frozen=True)
class RevisionUse:
    """One revision ingredient used by an individual."""

    extension: str
    operator: str
    operand: str


def revision_uses(individual: Individual) -> list[RevisionUse]:
    """All (extension, operator, operand) triples in the derivation tree."""
    uses: list[RevisionUse] = []
    for node in individual.derivation.walk():
        name = node.tree.name
        parts = name.split(":")
        if parts[0] in ("conn", "ext") and len(parts) == 4:
            uses.append(RevisionUse(parts[1], parts[2], parts[3]))
        elif parts[0] == "extu" and len(parts) == 3:
            uses.append(RevisionUse(parts[1], parts[2], ""))
    return uses


def revision_variables(individual: Individual) -> set[str]:
    """Variables introduced by the individual's revisions (``R`` excluded)."""
    return {
        use.operand
        for use in revision_uses(individual)
        if use.operand and use.operand != RANDOM_OPERAND
    }


def variable_selectivity(
    individuals: Sequence[Individual],
    variables: Iterable[str],
) -> dict[str, float]:
    """Selectivity (%) of each variable among the given best models.

    Args:
        individuals: The best models (e.g. the 50 best of Figure 9).
        variables: Variables to report, e.g. the Table II operand set.

    Returns:
        Mapping variable -> percentage of models whose revisions use it.
    """
    if not individuals:
        raise ValueError("selectivity needs at least one model")
    counts: Counter[str] = Counter()
    for individual in individuals:
        for variable in revision_variables(individual):
            counts[variable] += 1
    total = len(individuals)
    return {
        variable: 100.0 * counts.get(variable, 0) / total
        for variable in variables
    }


def extension_usage(
    individuals: Sequence[Individual],
) -> dict[str, float]:
    """Percentage of models revising each extension point."""
    if not individuals:
        raise ValueError("usage needs at least one model")
    counts: Counter[str] = Counter()
    for individual in individuals:
        extensions = {use.extension for use in revision_uses(individual)}
        for extension in extensions:
            counts[extension] += 1
    total = len(individuals)
    return {
        extension: 100.0 * count / total
        for extension, count in sorted(counts.items())
    }
