"""Forecast-skill metrics for water-quality model evaluation.

RMSE and MAE are the paper's two criteria (Section IV-C); the
hydrology-standard skill scores -- Nash-Sutcliffe efficiency (NSE),
Kling-Gupta efficiency (KGE), and percent bias (PBIAS) -- are provided
for downstream users, since they are the lingua franca for judging
river-model fits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _aligned(observed, predicted) -> tuple[np.ndarray, np.ndarray]:
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if observed.shape != predicted.shape:
        raise ValueError(
            f"shape mismatch: observed {observed.shape}, "
            f"predicted {predicted.shape}"
        )
    if observed.size == 0:
        raise ValueError("empty series")
    return observed, predicted


def rmse(observed, predicted) -> float:
    """Root mean square error (the paper's fitness function)."""
    observed, predicted = _aligned(observed, predicted)
    return float(np.sqrt(np.mean((predicted - observed) ** 2)))


def mae(observed, predicted) -> float:
    """Mean absolute error."""
    observed, predicted = _aligned(observed, predicted)
    return float(np.mean(np.abs(predicted - observed)))


def nse(observed, predicted) -> float:
    """Nash-Sutcliffe efficiency: 1 is perfect, 0 matches the mean
    predictor, negative is worse than predicting the mean."""
    observed, predicted = _aligned(observed, predicted)
    denominator = np.sum((observed - observed.mean()) ** 2)
    if denominator == 0:
        raise ValueError("NSE undefined for a constant observed series")
    return float(1.0 - np.sum((predicted - observed) ** 2) / denominator)


def pbias(observed, predicted) -> float:
    """Percent bias: positive = underprediction of total mass."""
    observed, predicted = _aligned(observed, predicted)
    total = np.sum(observed)
    if total == 0:
        raise ValueError("PBIAS undefined when observations sum to zero")
    return float(100.0 * np.sum(observed - predicted) / total)


def kge(observed, predicted) -> float:
    """Kling-Gupta efficiency (Gupta et al., 2009): 1 is perfect.

    Decomposes skill into correlation, bias ratio, and variability ratio.
    """
    observed, predicted = _aligned(observed, predicted)
    observed_std = observed.std()
    predicted_std = predicted.std()
    observed_mean = observed.mean()
    if observed_std == 0 or observed_mean == 0:
        raise ValueError("KGE undefined for constant/zero-mean observations")
    if predicted_std == 0:
        correlation = 0.0
    else:
        correlation = float(np.corrcoef(observed, predicted)[0, 1])
    beta = float(predicted.mean() / observed_mean)
    gamma = float(predicted_std / observed_std)
    return float(
        1.0
        - np.sqrt(
            (correlation - 1.0) ** 2 + (beta - 1.0) ** 2 + (gamma - 1.0) ** 2
        )
    )


@dataclass(frozen=True)
class SkillReport:
    """All skill scores of one prediction series."""

    rmse: float
    mae: float
    nse: float
    kge: float
    pbias: float

    def render(self) -> str:
        return (
            f"RMSE {self.rmse:.3f}  MAE {self.mae:.3f}  "
            f"NSE {self.nse:.3f}  KGE {self.kge:.3f}  "
            f"PBIAS {self.pbias:+.1f}%"
        )


def skill_report(observed, predicted) -> SkillReport:
    """Compute every skill score at once."""
    return SkillReport(
        rmse=rmse(observed, predicted),
        mae=mae(observed, predicted),
        nse=nse(observed, predicted),
        kge=kge(observed, predicted),
        pbias=pbias(observed, predicted),
    )
