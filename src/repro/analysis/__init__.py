"""Analysis tools: selectivity, perturbation correlation, model reports."""

from repro.analysis.metrics import (
    SkillReport,
    kge,
    mae,
    nse,
    pbias,
    rmse,
    skill_report,
)
from repro.analysis.model_report import report, revision_counts, revision_summary
from repro.analysis.perturbation import (
    PerturbationResult,
    UNCORRELATED_BAND,
    correlation_labels,
    perturbation_response,
)
from repro.analysis.selectivity import (
    RevisionUse,
    extension_usage,
    revision_uses,
    revision_variables,
    variable_selectivity,
)

__all__ = [
    "PerturbationResult",
    "SkillReport",
    "kge",
    "mae",
    "nse",
    "pbias",
    "rmse",
    "skill_report",
    "RevisionUse",
    "UNCORRELATED_BAND",
    "correlation_labels",
    "extension_usage",
    "perturbation_response",
    "report",
    "revision_counts",
    "revision_summary",
    "revision_uses",
    "revision_variables",
    "variable_selectivity",
]
