"""Human-readable reports of revised models (the Section IV-E case study).

Interpretability is a headline property of model revision: unlike
black-box baselines, a revised model is a readable system of equations
whose changes against the expert seed can be enumerated.  This module
renders both views.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.selectivity import revision_uses
from repro.expr.ast import strip_ext
from repro.gp.individual import Individual


def revision_summary(individual: Individual) -> dict[str, list[str]]:
    """Revisions per extension point, e.g. ``{"Ext5": ["* Vtmp", "* R"]}``."""
    summary: dict[str, list[str]] = {}
    for use in revision_uses(individual):
        operand = use.operand if use.operand else "(wrap)"
        summary.setdefault(use.extension, []).append(f"{use.operator} {operand}")
    return {ext: sorted(parts) for ext, parts in sorted(summary.items())}


def revision_counts(individual: Individual) -> Counter:
    """How many revisions target each extension point."""
    return Counter(use.extension for use in revision_uses(individual))


def report(individual: Individual, state_names: tuple[str, ...]) -> str:
    """A full report: equations, parameters, and the revision diff."""
    expressions, rvalues = individual.expressions()
    assignment = {**individual.params, **rvalues}
    lines = ["Revised model", "============="]
    for state, expression in zip(state_names, expressions):
        rendered = str(strip_ext(expression))
        for name, value in sorted(rvalues.items(), reverse=True):
            rendered = rendered.replace(name, format(value, ".4g"))
        lines.append(f"d{state}/dt = {rendered}")
    lines.append("")
    lines.append("Revisions (vs. expert seed)")
    lines.append("---------------------------")
    summary = revision_summary(individual)
    if not summary:
        lines.append("(none -- pure parameter calibration)")
    for extension, parts in summary.items():
        lines.append(f"{extension}: {', '.join(parts)}")
    lines.append("")
    lines.append("Constant parameters")
    lines.append("-------------------")
    for name, value in sorted(individual.params.items()):
        lines.append(f"{name} = {value:.4g}")
    return "\n".join(lines)
