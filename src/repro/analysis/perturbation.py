"""Variable-perturbation correlation analysis (paper Figure 9 colouring).

The correlation of a driver variable with phytoplankton growth is probed
by perturbing the variable's series and measuring the response of the
predicted biomass: a positive mean response means the variable is
*correlated* with growth, a negative one *inversely correlated*, and a
negligible one *uncorrelated*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dynamics.system import ProcessModel
from repro.river.simulator import RiverSystemSimulator, RiverTask

#: Relative responses below this magnitude count as "uncorrelated".
UNCORRELATED_BAND = 0.01


@dataclass(frozen=True)
class PerturbationResult:
    """Outcome of perturbing one variable."""

    variable: str
    relative_response: float

    @property
    def label(self) -> str:
        if abs(self.relative_response) < UNCORRELATED_BAND:
            return "uncorrelated"
        if self.relative_response > 0:
            return "correlated"
        return "inversely correlated"


def _perturbed_task(task: RiverTask, variable: str, factor: float) -> RiverTask:
    """A copy of the task with one driver column scaled at every station."""
    simulator = task.simulator
    drivers = {}
    for name, table in simulator.drivers.items():
        if variable in table.names:
            scaled = table.column(variable) * factor
            drivers[name] = table.with_column(variable, scaled)
        else:
            drivers[name] = table
    clone = RiverSystemSimulator(
        network=simulator.network,
        schedules=simulator.schedules,
        drivers=drivers,
        boundary=simulator.boundary,
        initial_states=simulator.initial_states,
        clamp=simulator.clamp,
        dt=simulator.dt,
    )
    return RiverTask(
        simulator=clone,
        observed=task.observed,
        target_station=task.target_station,
        target_state=task.target_state,
        state_names=task.state_names,
        var_order=task.var_order,
    )


def perturbation_response(
    task: RiverTask,
    model: ProcessModel,
    params: Sequence[float],
    variable: str,
    epsilon: float = 0.1,
) -> PerturbationResult:
    """Relative biomass response to scaling ``variable`` by ``1 + epsilon``.

    Returns the mean relative change of the predicted target series; the
    baseline prediction is computed on the unperturbed task.
    """
    baseline = task.trajectory(model, params)
    if baseline is None:
        raise ValueError("model diverges on the unperturbed task")
    perturbed_task = _perturbed_task(task, variable, 1.0 + epsilon)
    perturbed = perturbed_task.trajectory(model, params)
    if perturbed is None:
        return PerturbationResult(variable, float("-inf"))
    scale = np.mean(np.abs(baseline)) + 1e-9
    response = float(np.mean(perturbed - baseline) / scale)
    return PerturbationResult(variable, response)


def correlation_labels(
    task: RiverTask,
    model: ProcessModel,
    params: Sequence[float],
    variables: Sequence[str],
    epsilon: float = 0.1,
) -> dict[str, PerturbationResult]:
    """Perturbation responses for several variables."""
    return {
        variable: perturbation_response(task, model, params, variable, epsilon)
        for variable in variables
    }
