"""Forward integration of process models over driver data.

The river models are integrated with a daily explicit Euler step (the
standard choice for this family of ecological models); an RK4 stepper is
provided for callers that need higher-order accuracy.  State trajectories
are clamped to a physically plausible band, and divergence (NaN) is
reported via :class:`SimulationDiverged` so that fitness evaluation can
assign the worst score instead of propagating bad floats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.dynamics.drivers import DriverTable
from repro.dynamics.system import ProcessModel


class SimulationDiverged(ArithmeticError):
    """Raised when a simulated state becomes NaN."""


@dataclass(frozen=True)
class ClampSpec:
    """Per-state clamping band applied after every step.

    Biomass states cannot go negative and unbounded exponential growth is
    unphysical; the clamp keeps evolved models inside a sane envelope so
    one bad individual cannot stall the whole evolutionary run.
    """

    minimum: float = 1e-3
    maximum: float = 1e6

    def apply(self, value: float) -> float:
        if value != value:  # NaN
            raise SimulationDiverged("state became NaN")
        if value < self.minimum:
            return self.minimum
        if value > self.maximum:
            return self.maximum
        return value


def euler_steps(
    model: ProcessModel,
    params: Sequence[float],
    drivers: DriverTable,
    initial_state: Sequence[float],
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
    use_compiled: bool = True,
) -> Iterator[tuple[float, ...]]:
    """Yield the state after each Euler step, one per driver row.

    The state yielded at step ``t`` is the state *after* consuming driver
    row ``t``; the initial state itself is not yielded.

    Args:
        model: The process model to integrate.
        params: Parameter values following ``model.param_order``.
        drivers: Driver table whose columns follow ``model.var_order``.
        initial_state: Starting values following ``model.state_names``.
        dt: Step size (days).
        clamp: Clamping band applied to every state after each step.
        use_compiled: When False, step through the reference interpreter
            (the Figure 10 "no runtime compilation" configuration).
    """
    if drivers.names != model.var_order:
        drivers = drivers.select(model.var_order)
    params = tuple(params)
    state = list(float(value) for value in initial_state)
    n_states = len(state)
    if n_states != len(model.state_names):
        raise ValueError(
            f"initial state has {n_states} entries, model has "
            f"{len(model.state_names)} states"
        )
    step = model.compiled() if use_compiled else model.interpret_step
    rows = drivers.rows()
    for row in rows:
        derivatives = step(params, row, state)
        for index in range(n_states):
            state[index] = clamp.apply(state[index] + dt * derivatives[index])
        yield tuple(state)


def rk4_steps(
    model: ProcessModel,
    params: Sequence[float],
    drivers: DriverTable,
    initial_state: Sequence[float],
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
) -> Iterator[tuple[float, ...]]:
    """Yield states from a classical Runge-Kutta-4 integration.

    Driver values are held constant within a step (they are daily
    observations, so sub-step interpolation would be spurious precision).
    """
    if drivers.names != model.var_order:
        drivers = drivers.select(model.var_order)
    params = tuple(params)
    state = [float(value) for value in initial_state]
    n_states = len(state)
    step = model.compiled()
    for row in drivers.rows():
        k1 = step(params, row, state)
        mid1 = [state[i] + 0.5 * dt * k1[i] for i in range(n_states)]
        k2 = step(params, row, mid1)
        mid2 = [state[i] + 0.5 * dt * k2[i] for i in range(n_states)]
        k3 = step(params, row, mid2)
        end = [state[i] + dt * k3[i] for i in range(n_states)]
        k4 = step(params, row, end)
        for i in range(n_states):
            increment = (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]) / 6.0
            state[i] = clamp.apply(state[i] + dt * increment)
        yield tuple(state)


def simulate(
    model: ProcessModel,
    params: Sequence[float],
    drivers: DriverTable,
    initial_state: Sequence[float],
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
    use_compiled: bool = True,
) -> np.ndarray:
    """Integrate and return the full trajectory, shape ``(T, n_states)``.

    Raises:
        SimulationDiverged: If any state becomes NaN.
    """
    trajectory = np.empty((len(drivers), len(model.state_names)), dtype=float)
    stepper = euler_steps(
        model, params, drivers, initial_state, dt, clamp, use_compiled
    )
    for index, state in enumerate(stepper):
        trajectory[index] = state
    return trajectory


def is_finite_trajectory(trajectory: np.ndarray) -> bool:
    """True if every entry of the trajectory is finite."""
    return bool(np.all(np.isfinite(trajectory)))


def safe_simulate(
    model: ProcessModel,
    params: Sequence[float],
    drivers: DriverTable,
    initial_state: Sequence[float],
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
) -> np.ndarray | None:
    """Like :func:`simulate`, but return None on divergence."""
    try:
        trajectory = simulate(model, params, drivers, initial_state, dt, clamp)
    except (SimulationDiverged, OverflowError):
        return None
    if not is_finite_trajectory(trajectory):
        return None
    return trajectory


def observation_error_stream(
    model: ProcessModel,
    params: Sequence[float],
    drivers: DriverTable,
    initial_state: Sequence[float],
    observed: np.ndarray,
    target_state: str,
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
    use_compiled: bool = True,
) -> Iterator[float]:
    """Yield per-step squared errors between a state and observations.

    This is the *fitness case* stream consumed by evaluation
    short-circuiting (Algorithm 1): one squared error per time step,
    produced incrementally so evaluation can stop early.

    Raises:
        SimulationDiverged: If the simulated state becomes NaN (callers
            should score such individuals with the worst fitness).
    """
    try:
        target_index = model.state_names.index(target_state)
    except ValueError:
        raise ValueError(
            f"model has no state {target_state!r}; states: {model.state_names}"
        ) from None
    observed = np.asarray(observed, dtype=float)
    if len(observed) != len(drivers):
        raise ValueError(
            f"{len(observed)} observations for {len(drivers)} driver rows"
        )
    stepper = euler_steps(
        model, params, drivers, initial_state, dt, clamp, use_compiled
    )
    for step_index, state in enumerate(stepper):
        predicted = state[target_index]
        if not math.isfinite(predicted):
            raise SimulationDiverged("predicted value is not finite")
        error = predicted - observed[step_index]
        yield error * error
