"""Forward integration of process models over driver data.

The river models are integrated with a daily explicit Euler step (the
standard choice for this family of ecological models); an RK4 stepper is
provided for callers that need higher-order accuracy.  State trajectories
are clamped to a physically plausible band, and divergence (NaN) is
reported via :class:`SimulationDiverged` so that fitness evaluation can
assign the worst score instead of propagating bad floats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.dynamics.drivers import DriverTable
from repro.dynamics.system import ProcessModel
from repro.expr.compile import CompiledCohortKernel
from repro.obs.metrics import GLOBAL_METRICS

#: Element budget for hoisted driver-dependent temporaries in batched
#: rollouts (~16 MiB of float64) -- bounds memory on long trajectories.
_HOIST_ELEMENT_BUDGET = 1 << 21


class SimulationDiverged(ArithmeticError):
    """Raised when a simulated state becomes NaN."""


@dataclass(frozen=True)
class ClampSpec:
    """Per-state clamping band applied after every step.

    Biomass states cannot go negative and unbounded exponential growth is
    unphysical; the clamp keeps evolved models inside a sane envelope so
    one bad individual cannot stall the whole evolutionary run.
    """

    minimum: float = 1e-3
    maximum: float = 1e6

    def apply(self, value: float) -> float:
        if value != value:  # NaN
            raise SimulationDiverged("state became NaN")
        if value < self.minimum:
            return self.minimum
        if value > self.maximum:
            return self.maximum
        return value


def euler_steps(
    model: ProcessModel,
    params: Sequence[float],
    drivers: DriverTable,
    initial_state: Sequence[float],
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
    use_compiled: bool = True,
) -> Iterator[tuple[float, ...]]:
    """Yield the state after each Euler step, one per driver row.

    The state yielded at step ``t`` is the state *after* consuming driver
    row ``t``; the initial state itself is not yielded.

    Args:
        model: The process model to integrate.
        params: Parameter values following ``model.param_order``.
        drivers: Driver table whose columns follow ``model.var_order``.
        initial_state: Starting values following ``model.state_names``.
        dt: Step size (days).
        clamp: Clamping band applied to every state after each step.
        use_compiled: When False, step through the reference interpreter
            (the Figure 10 "no runtime compilation" configuration).
    """
    if drivers.names != model.var_order:
        drivers = drivers.select(model.var_order)
    params = tuple(params)
    state = list(float(value) for value in initial_state)
    n_states = len(state)
    if n_states != len(model.state_names):
        raise ValueError(
            f"initial state has {n_states} entries, model has "
            f"{len(model.state_names)} states"
        )
    step = model.compiled() if use_compiled else model.interpret_step
    rows = drivers.rows()
    for row in rows:
        derivatives = step(params, row, state)
        for index in range(n_states):
            state[index] = clamp.apply(state[index] + dt * derivatives[index])
        yield tuple(state)


def _checked_slopes(slopes: tuple[float, ...]) -> tuple[float, ...]:
    """Raise :class:`SimulationDiverged` if any slope is NaN.

    RK4 evaluates the step function at intermediate points; a NaN in an
    intermediate slope (``k2``/``k3``) would otherwise propagate silently
    through the combined update, so slopes get the same loud-failure
    treatment :meth:`ClampSpec.apply` gives states.
    """
    for value in slopes:
        if value != value:  # NaN
            raise SimulationDiverged("slope became NaN")
    return slopes


def rk4_steps(
    model: ProcessModel,
    params: Sequence[float],
    drivers: DriverTable,
    initial_state: Sequence[float],
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
    use_compiled: bool = True,
) -> Iterator[tuple[float, ...]]:
    """Yield states from a classical Runge-Kutta-4 integration.

    Driver values are held constant within a step (they are daily
    observations, so sub-step interpolation would be spurious precision).
    Matches :func:`euler_steps` error behaviour: a NaN in any slope or
    updated state raises :class:`SimulationDiverged`, and ``use_compiled``
    selects between the compiled step function and the reference
    interpreter.
    """
    if drivers.names != model.var_order:
        drivers = drivers.select(model.var_order)
    params = tuple(params)
    state = [float(value) for value in initial_state]
    n_states = len(state)
    step = model.compiled() if use_compiled else model.interpret_step
    for row in drivers.rows():
        k1 = _checked_slopes(step(params, row, state))
        mid1 = [state[i] + 0.5 * dt * k1[i] for i in range(n_states)]
        k2 = _checked_slopes(step(params, row, mid1))
        mid2 = [state[i] + 0.5 * dt * k2[i] for i in range(n_states)]
        k3 = _checked_slopes(step(params, row, mid2))
        end = [state[i] + dt * k3[i] for i in range(n_states)]
        k4 = _checked_slopes(step(params, row, end))
        for i in range(n_states):
            increment = (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]) / 6.0
            state[i] = clamp.apply(state[i] + dt * increment)
        yield tuple(state)


@dataclass(frozen=True)
class BatchedRollout:
    """Outcome of a batched Euler integration over K parameter columns.

    Attributes:
        states: Trajectory array of shape ``(T, n_states, K)``; column
            ``k`` of a non-diverged candidate matches the scalar
            :func:`euler_steps` trajectory for its parameter vector.
        diverged_at: Shape ``(K,)``; the first driver row whose update
            produced a NaN in column ``k``, or ``T`` when the column
            never diverged.  Rows at and after ``diverged_at[k]`` hold
            the column's last good state (frozen, then clamped) -- they
            carry no information and must not be scored.
    """

    states: np.ndarray
    diverged_at: np.ndarray

    @property
    def n_steps(self) -> int:
        return self.states.shape[0]

    @property
    def diverged(self) -> np.ndarray:
        """Boolean mask of shape ``(K,)``: which columns went NaN."""
        return self.diverged_at < self.n_steps

    def target_series(self, state_index: int) -> np.ndarray:
        """One state's trajectories, shape ``(T, K)``."""
        return self.states[:, state_index, :]


def batched_euler_rollout(
    model: ProcessModel,
    params: np.ndarray,
    drivers: DriverTable,
    initial_state: Sequence[float],
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
) -> BatchedRollout:
    """Integrate K parameter columns of one structure in a single pass.

    The batched twin of :func:`euler_steps`: every driver row advances
    all K columns of the ``(n_states, K)`` state matrix through the
    model's batched kernel, with vectorised clamping.  Divergence is
    masked per column instead of raised -- a column whose update goes NaN
    is frozen at its last good state and recorded in
    ``BatchedRollout.diverged_at``, so one poisoned candidate cannot
    spoil its batch.  IEEE exceptional intermediates (overflow to inf,
    inf - inf) are expected from evolved models and silenced for the
    duration of the rollout; NaN detection happens explicitly per step.

    Args:
        model: The process model to integrate.
        params: Parameter matrix of shape ``(n_params, K)``, rows
            following ``model.param_order``; column ``k`` is candidate
            ``k``'s parameter vector.
        drivers: Driver table whose columns follow ``model.var_order``.
        initial_state: Starting values following ``model.state_names``
            (shared by all K candidates).
        dt: Step size (days).
        clamp: Clamping band applied to every state after each step.
    """
    if drivers.names != model.var_order:
        drivers = drivers.select(model.var_order)
    params = np.asarray(params, dtype=float)
    if params.ndim != 2:
        raise ValueError(
            f"params must be an (n_params, K) matrix, got shape {params.shape}"
        )
    if params.shape[0] != len(model.param_order):
        raise ValueError(
            f"params has {params.shape[0]} rows, model has "
            f"{len(model.param_order)} parameters"
        )
    n_states = len(model.state_names)
    initial = np.asarray(initial_state, dtype=float)
    if initial.shape != (n_states,):
        raise ValueError(
            f"initial state has shape {initial.shape}, model has "
            f"{n_states} states"
        )
    n_columns = params.shape[1]
    n_steps = len(drivers)
    GLOBAL_METRICS.counter("kernel.batched_rollouts").inc()
    GLOBAL_METRICS.counter("kernel.batched_columns").inc(n_columns)
    GLOBAL_METRICS.counter("kernel.batched_steps").inc(n_steps * n_columns)
    return _euler_rollout_core(
        model.compiled_batched(),
        params,
        drivers.values,
        initial,
        n_states,
        dt,
        clamp,
    )


def _euler_rollout_core(
    kernel,
    params: np.ndarray,
    rows: np.ndarray,
    initial: np.ndarray,
    n_states: int,
    dt: float,
    clamp: ClampSpec,
) -> BatchedRollout:
    """The shared per-step loop of the batched and fused rollout forms.

    ``kernel`` is any two-phase step kernel (batched or cohort); its
    column axis is opaque here -- per-column divergence masking and
    freezing work identically whether the columns belong to one
    structure's K candidates or to M structures' padded lanes, because
    every operation in the loop is elementwise over that axis.
    """
    n_steps = len(rows)
    n_columns = params.shape[1]
    states = np.empty((n_steps, n_states, n_columns), dtype=float)
    diverged_at = np.full(n_columns, n_steps, dtype=np.int64)
    if n_columns == 0 or n_steps == 0:
        return BatchedRollout(states=states, diverged_at=diverged_at)
    state = np.repeat(initial[:, np.newaxis], n_columns, axis=1)
    alive = np.ones(n_columns, dtype=bool)
    any_dead = False
    finished = False
    # Driver-dependent temporaries are hoisted out of the step loop and
    # evaluated over whole blocks of rows at once; the block length keeps
    # the hoisted arrays within a fixed element budget.
    if kernel.n_hoisted:
        block = max(
            16, _HOIST_ELEMENT_BUDGET // (kernel.n_hoisted * n_columns)
        )
    else:
        block = n_steps
    with np.errstate(all="ignore"):
        for block_start in range(0, n_steps, block):
            block_rows = rows[block_start : block_start + block]
            hoisted = kernel.precompute(params, block_rows)
            for offset in range(len(block_rows)):
                index = block_start + offset
                derivatives = kernel.step(params, hoisted, offset, state)
                # Update in place into the output buffer: dt * d + state
                # is bitwise-identical to the scalar state + dt * d.
                updated = states[index]
                np.multiply(derivatives, dt, out=updated)
                updated += state
                # Fast path: min() propagates NaN, so a single reduction
                # detects divergence anywhere in the batch without
                # building per-column masks on healthy steps.
                if any_dead or np.isnan(np.min(updated)):
                    newly_dead = np.isnan(updated).any(axis=0) & alive
                    if newly_dead.any():
                        diverged_at[newly_dead] = index
                        alive &= ~newly_dead
                        any_dead = True
                        if not alive.any():
                            frozen = np.clip(
                                state, clamp.minimum, clamp.maximum
                            )
                            states[index:] = frozen
                            finished = True
                            break
                    dead = ~alive
                    updated[:, dead] = state[:, dead]
                np.clip(updated, clamp.minimum, clamp.maximum, out=updated)
                state = updated
            if finished:
                break
    return BatchedRollout(states=states, diverged_at=diverged_at)


def fused_euler_rollout(
    kernel: CompiledCohortKernel,
    params: np.ndarray,
    drivers: DriverTable,
    initial_state: Sequence[float],
    var_order: Sequence[str],
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
) -> BatchedRollout:
    """Integrate a fused multi-structure cohort kernel in a single pass.

    The cohort twin of :func:`batched_euler_rollout`: the same per-step
    loop advances all ``M * K`` lanes of the fused kernel at once.  Lane
    ``m * K + k`` of the result is bit-identical to column ``k`` of a
    :func:`batched_euler_rollout` of member ``m`` alone, because every
    loop operation (derivative kernel included) is elementwise over the
    lane axis; divergence is likewise masked per lane, so a padding lane
    or another member's lane going NaN never perturbs live lanes.

    Args:
        kernel: A fused cohort kernel from
            :func:`repro.expr.compile.compile_model_cohort`.
        params: Padded parameter matrix of shape
            ``(kernel.n_params, kernel.width)``; member ``m``'s rows
            beyond its own parameter count are never read by its lanes.
        drivers: Driver table; reordered to ``var_order`` if needed.
        initial_state: Starting values shared by every lane.
        var_order: Driver-variable order the kernel was compiled with
            (shared by all cohort members).
        dt: Step size (days).
        clamp: Clamping band applied to every state after each step.
    """
    var_order = tuple(var_order)
    if drivers.names != var_order:
        drivers = drivers.select(var_order)
    params = np.asarray(params, dtype=float)
    if params.shape != (kernel.n_params, kernel.width):
        raise ValueError(
            f"params has shape {params.shape}, fused kernel expects "
            f"({kernel.n_params}, {kernel.width})"
        )
    initial = np.asarray(initial_state, dtype=float)
    if initial.shape != (kernel.n_states,):
        raise ValueError(
            f"initial state has shape {initial.shape}, cohort has "
            f"{kernel.n_states} states"
        )
    n_steps = len(drivers)
    GLOBAL_METRICS.counter("kernel.fused_rollouts").inc()
    GLOBAL_METRICS.counter("kernel.fused_lanes").inc(kernel.width)
    GLOBAL_METRICS.counter("kernel.fused_steps").inc(n_steps * kernel.width)
    return _euler_rollout_core(
        kernel, params, drivers.values, initial, kernel.n_states, dt, clamp
    )


def simulate(
    model: ProcessModel,
    params: Sequence[float],
    drivers: DriverTable,
    initial_state: Sequence[float],
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
    use_compiled: bool = True,
) -> np.ndarray:
    """Integrate and return the full trajectory, shape ``(T, n_states)``.

    Raises:
        SimulationDiverged: If any state becomes NaN.
    """
    GLOBAL_METRICS.counter("kernel.scalar_simulations").inc()
    trajectory = np.empty((len(drivers), len(model.state_names)), dtype=float)
    stepper = euler_steps(
        model, params, drivers, initial_state, dt, clamp, use_compiled
    )
    for index, state in enumerate(stepper):
        trajectory[index] = state
    return trajectory


def is_finite_trajectory(trajectory: np.ndarray) -> bool:
    """True if every entry of the trajectory is finite."""
    return bool(np.all(np.isfinite(trajectory)))


def safe_simulate(
    model: ProcessModel,
    params: Sequence[float],
    drivers: DriverTable,
    initial_state: Sequence[float],
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
) -> np.ndarray | None:
    """Like :func:`simulate`, but return None on divergence."""
    try:
        trajectory = simulate(model, params, drivers, initial_state, dt, clamp)
    except (SimulationDiverged, OverflowError):
        return None
    if not is_finite_trajectory(trajectory):
        return None
    return trajectory


def observation_error_stream(
    model: ProcessModel,
    params: Sequence[float],
    drivers: DriverTable,
    initial_state: Sequence[float],
    observed: np.ndarray,
    target_state: str,
    dt: float = 1.0,
    clamp: ClampSpec = ClampSpec(),
    use_compiled: bool = True,
) -> Iterator[float]:
    """Yield per-step squared errors between a state and observations.

    This is the *fitness case* stream consumed by evaluation
    short-circuiting (Algorithm 1): one squared error per time step,
    produced incrementally so evaluation can stop early.

    Raises:
        SimulationDiverged: If the simulated state becomes NaN (callers
            should score such individuals with the worst fitness).
    """
    try:
        target_index = model.state_names.index(target_state)
    except ValueError:
        raise ValueError(
            f"model has no state {target_state!r}; states: {model.state_names}"
        ) from None
    observed = np.asarray(observed, dtype=float)
    if len(observed) != len(drivers):
        raise ValueError(
            f"{len(observed)} observations for {len(drivers)} driver rows"
        )
    stepper = euler_steps(
        model, params, drivers, initial_state, dt, clamp, use_compiled
    )
    for step_index, state in enumerate(stepper):
        predicted = state[target_index]
        if not math.isfinite(predicted):
            raise SimulationDiverged("predicted value is not finite")
        error = predicted - observed[step_index]
        yield error * error
