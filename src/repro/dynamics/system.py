"""Process models: systems of differential equations over driver data.

A :class:`ProcessModel` couples named state variables to the expressions
for their time derivatives.  Models compile themselves (once per structure)
into a single step function via :mod:`repro.expr.compile`, and can also be
evaluated through the reference interpreter for the speedup ablations of
Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.expr.ast import Expr, free_params, free_states, free_vars, strip_ext
from repro.expr.compile import (
    KERNEL_CACHE,
    CompiledBatchedModel,
    CompiledCohortKernel,
    CompiledModel,
    compile_model,
    compile_model_batched,
    compile_model_cohort,
)
from repro.expr.evaluate import evaluate
from repro.expr.simplify import canonical_key


class ModelError(ValueError):
    """Raised for ill-formed process models."""


@dataclass
class ProcessModel:
    """A system of coupled ``dX/dt`` equations.

    Attributes:
        equations: Mapping from state name to the expression for its time
            derivative.  Mapping order fixes the state order used by
            compiled step functions.
        param_order: Parameter order used by compiled step functions.
        var_order: Driver-variable order used by compiled step functions.
    """

    equations: dict[str, Expr]
    param_order: tuple[str, ...]
    var_order: tuple[str, ...]
    _compiled: CompiledModel | None = field(default=None, repr=False, compare=False)
    _compiled_batched: CompiledBatchedModel | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.equations:
            raise ModelError("a process model needs at least one equation")
        self.param_order = tuple(self.param_order)
        self.var_order = tuple(self.var_order)
        states = set(self.state_names)
        params = set(self.param_order)
        variables = set(self.var_order)
        for state, expr in self.equations.items():
            unknown_states = free_states(expr) - states
            if unknown_states:
                raise ModelError(
                    f"equation for {state} references unknown states "
                    f"{sorted(unknown_states)}"
                )
            unknown_params = free_params(expr) - params
            if unknown_params:
                raise ModelError(
                    f"equation for {state} references unbound parameters "
                    f"{sorted(unknown_params)}"
                )
            unknown_vars = free_vars(expr) - variables
            if unknown_vars:
                raise ModelError(
                    f"equation for {state} references unknown variables "
                    f"{sorted(unknown_vars)}"
                )

    def __getstate__(self) -> dict:
        # Compiled step functions (scalar and batched) are exec-generated
        # and unpicklable; they are rebuilt lazily (``compiled()`` /
        # ``compiled_batched()``) after transfer to a worker, where the
        # worker's own process-global kernel cache takes over sharing.
        state = dict(self.__dict__)
        state["_compiled"] = None
        state["_compiled_batched"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def state_names(self) -> tuple[str, ...]:
        return tuple(self.equations)

    @classmethod
    def from_equations(
        cls,
        equations: Mapping[str, Expr],
        var_order: Sequence[str],
        extra_params: Sequence[str] = (),
    ) -> "ProcessModel":
        """Build a model, inferring the parameter order from the equations.

        Parameters are ordered with the explicitly supplied ``extra_params``
        first (so that shared expert parameters keep stable positions),
        followed by any remaining parameters in sorted order.
        """
        equations = dict(equations)
        discovered: set[str] = set()
        for expr in equations.values():
            discovered |= free_params(expr)
        ordered = list(extra_params)
        ordered.extend(sorted(discovered - set(extra_params)))
        return cls(equations, tuple(ordered), tuple(var_order))

    def _kernel_key(self, kind: str) -> tuple:
        """Cache key for this model's kernels in the process-global LRU.

        Keyed on the canonical structure plus every positional order the
        generated source bakes in -- the same sharing rule the fitness
        evaluator has always used for structurally identical individuals.
        """
        return (
            kind,
            self.structure_key(),
            self.param_order,
            self.var_order,
            self.state_names,
        )

    def compiled(self) -> CompiledModel:
        """Return (compiling on first use) the model's step function.

        The step function has signature ``step(P, V, S) -> tuple`` where
        ``P`` follows :attr:`param_order`, ``V`` follows :attr:`var_order`
        and ``S`` follows :attr:`state_names`; the result holds one
        derivative per state.  Kernels are shared per structure through
        the process-global :data:`repro.expr.compile.KERNEL_CACHE`, so
        compilation cost is paid once per structure per process.
        """
        if self._compiled is None:
            self._compiled = KERNEL_CACHE.get_or_build(
                self._kernel_key("scalar"), self._build_scalar_kernel
            )
        return self._compiled

    def _build_scalar_kernel(self) -> CompiledModel:
        exprs = [strip_ext(self.equations[name]) for name in self.state_names]
        return compile_model(
            exprs, self.param_order, self.var_order, self.state_names
        )

    def compiled_batched(self) -> CompiledBatchedModel:
        """Return (compiling on first use) the batched step function.

        The batched kernel has signature ``step(P, V, S) -> ndarray``
        with ``P`` of shape ``(n_params, K)``, ``V`` one driver row and
        ``S`` of shape ``(n_states, K)``; it advances K candidate
        parameter columns in one vectorised pass and agrees with the
        scalar step column by column to float tolerance.
        """
        if self._compiled_batched is None:
            self._compiled_batched = KERNEL_CACHE.get_or_build(
                self._kernel_key("batched"), self._build_batched_kernel
            )
        return self._compiled_batched

    def _build_batched_kernel(self) -> CompiledBatchedModel:
        exprs = [strip_ext(self.equations[name]) for name in self.state_names]
        return compile_model_batched(
            exprs, self.param_order, self.var_order, self.state_names
        )

    def interpret_step(
        self,
        params: Sequence[float],
        variables: Sequence[float],
        states: Sequence[float],
    ) -> tuple[float, ...]:
        """Evaluate one step through the reference interpreter.

        Used as the non-compiled baseline in the runtime-compilation
        ablation (Figure 10); behaviourally identical to ``compiled()``.
        """
        param_map = dict(zip(self.param_order, params))
        var_map = dict(zip(self.var_order, variables))
        state_map = dict(zip(self.state_names, states))
        return tuple(
            evaluate(self.equations[name], param_map, var_map, state_map)
            for name in self.state_names
        )

    def structure_key(self) -> str:
        """A canonical key identifying the model structure.

        Two models with the same key are algebraically identical up to
        commutative reordering (parameter *names* included), which is what
        both the compiled-function cache and the fitness tree cache key on.
        The key is memoised per instance (equations are never mutated
        after construction); the memo travels through pickling, saving
        recanonicalisation in pool workers.
        """
        cached = self.__dict__.get("_structure_key")
        if cached is None:
            parts = [
                f"{name}={canonical_key(expr)}"
                for name, expr in self.equations.items()
            ]
            cached = ";".join(parts)
            self.__dict__["_structure_key"] = cached
        return cached

    def describe(self) -> str:
        """Human-readable rendering of the equations."""
        lines = [
            f"d{name}/dt = {strip_ext(expr)}"
            for name, expr in self.equations.items()
        ]
        return "\n".join(lines)


def cohort_signature(
    models: Sequence[ProcessModel], lanes_per_member: int
) -> tuple:
    """The :data:`KERNEL_CACHE` key of a fused cohort kernel.

    Keyed on every member's ``(structure_key, param_order)`` in packing
    order plus the lane count and the shared variable/state orders --
    everything the generated source bakes in (lane-slice bounds depend
    on ``lanes_per_member``).  Deterministic packing upstream makes the
    signature stable across generations, so a recurring set of
    structures keeps hitting one compiled kernel even when the cohort
    is re-planned from a shuffled population.
    """
    first = models[0]
    return (
        "cohort",
        tuple(
            (model.structure_key(), model.param_order) for model in models
        ),
        lanes_per_member,
        first.var_order,
        first.state_names,
    )


def compile_cohort(
    models: Sequence[ProcessModel], lanes_per_member: int
) -> CompiledCohortKernel:
    """Fused cohort kernel for ``models``, via :data:`KERNEL_CACHE`.

    Every member must share ``var_order`` and ``state_names`` (the
    fitness planner partitions on both before packing cohorts).
    """
    if not models:
        raise ModelError("a cohort needs at least one model")
    first = models[0]
    for model in models:
        if (
            model.var_order != first.var_order
            or model.state_names != first.state_names
        ):
            raise ModelError(
                "cohort members must share var_order and state_names"
            )

    def build() -> CompiledCohortKernel:
        members = [
            (
                [strip_ext(model.equations[name]) for name in model.state_names],
                model.param_order,
            )
            for model in models
        ]
        return compile_model_cohort(
            members, first.var_order, first.state_names, lanes_per_member
        )

    return KERNEL_CACHE.get_or_build(
        cohort_signature(models, lanes_per_member), build
    )
