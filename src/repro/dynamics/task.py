"""Modeling tasks: drivers + observations + a target state to match.

A :class:`ModelingTask` is the generic "fit this dynamic system to these
observations" problem description shared by GMR, GGGP, and all nine model
calibration baselines: simulate a candidate model over the driver table
and score one state's trajectory against observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.dynamics.drivers import DriverTable
from repro.dynamics.integrate import (
    ClampSpec,
    SimulationDiverged,
    observation_error_stream,
    simulate,
)
from repro.dynamics.system import ProcessModel

#: Fitness assigned to diverging / non-finite simulations.
BAD_FITNESS = 1e15


@dataclass
class ModelingTask:
    """Fit a process model to observations of one state variable.

    Attributes:
        drivers: Exogenous driver table; its column order is the variable
            order candidate models must use.
        observed: Observations of ``target_state``, one per driver row.
        target_state: Name of the observed state.
        state_names: All state names, fixing equation order.
        initial_state: Initial state values, following ``state_names``.
        dt: Integration step (days).
        clamp: State clamping band.
    """

    drivers: DriverTable
    observed: np.ndarray
    target_state: str
    state_names: tuple[str, ...]
    initial_state: tuple[float, ...]
    dt: float = 1.0
    clamp: ClampSpec = field(default_factory=ClampSpec)

    def __post_init__(self) -> None:
        self.observed = np.asarray(self.observed, dtype=float)
        if len(self.observed) != len(self.drivers):
            raise ValueError(
                f"{len(self.observed)} observations for "
                f"{len(self.drivers)} driver rows"
            )
        if self.target_state not in self.state_names:
            raise ValueError(
                f"target state {self.target_state!r} not in {self.state_names}"
            )
        if len(self.initial_state) != len(self.state_names):
            raise ValueError("initial_state length must match state_names")

    @property
    def n_cases(self) -> int:
        """Number of fitness cases (time steps)."""
        return len(self.drivers)

    @property
    def var_order(self) -> tuple[str, ...]:
        return self.drivers.names

    def error_stream(
        self,
        model: ProcessModel,
        params: Sequence[float],
        use_compiled: bool = True,
    ) -> Iterator[float]:
        """Per-step squared-error stream (for short-circuited evaluation)."""
        return observation_error_stream(
            model,
            params,
            self.drivers,
            self.initial_state,
            self.observed,
            self.target_state,
            dt=self.dt,
            clamp=self.clamp,
            use_compiled=use_compiled,
        )

    def rmse(
        self,
        model: ProcessModel,
        params: Sequence[float],
        use_compiled: bool = True,
    ) -> float:
        """Full-trajectory RMSE; :data:`BAD_FITNESS` on divergence."""
        total = 0.0
        count = 0
        try:
            for squared_error in self.error_stream(model, params, use_compiled):
                total += squared_error
                count += 1
        except (SimulationDiverged, OverflowError):
            return BAD_FITNESS
        if count == 0 or not np.isfinite(total):
            return BAD_FITNESS
        return float(np.sqrt(total / count))

    def mae(self, model: ProcessModel, params: Sequence[float]) -> float:
        """Full-trajectory mean absolute error; BAD_FITNESS on divergence."""
        trajectory = self.trajectory(model, params)
        if trajectory is None:
            return BAD_FITNESS
        return float(np.mean(np.abs(trajectory - self.observed)))

    def trajectory(
        self,
        model: ProcessModel,
        params: Sequence[float],
    ) -> np.ndarray | None:
        """The simulated series of the target state; None on divergence."""
        try:
            states = simulate(
                model,
                params,
                self.drivers,
                self.initial_state,
                dt=self.dt,
                clamp=self.clamp,
            )
        except (SimulationDiverged, OverflowError):
            return None
        index = model.state_names.index(self.target_state)
        series = states[:, index]
        if not np.all(np.isfinite(series)):
            return None
        return series

    def slice(self, start: int, stop: int) -> "ModelingTask":
        """A time-sliced copy (e.g. to split train/test periods).

        The initial state of the sliced task is the original initial state
        when ``start == 0``; otherwise callers should supply observations
        of the state at ``start`` via :meth:`with_initial_state`.
        """
        return ModelingTask(
            drivers=self.drivers.slice(start, stop),
            observed=self.observed[start:stop],
            target_state=self.target_state,
            state_names=self.state_names,
            initial_state=self.initial_state,
            dt=self.dt,
            clamp=self.clamp,
        )

    def with_initial_state(self, initial_state: Sequence[float]) -> "ModelingTask":
        """A copy with a different initial state."""
        return ModelingTask(
            drivers=self.drivers,
            observed=self.observed,
            target_state=self.target_state,
            state_names=self.state_names,
            initial_state=tuple(initial_state),
            dt=self.dt,
            clamp=self.clamp,
        )
