"""Time-indexed exogenous driver variables.

Dynamic-process models import the values of *variable parameters* (the
paper's ``V``-prefixed quantities, Table IV) from observed data at each
evaluation time ``t``.  A :class:`DriverTable` stores those series in a
fixed column order so that compiled step functions can read them by
position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np


class DriverError(ValueError):
    """Raised for malformed driver tables."""


@dataclass(frozen=True)
class DriverTable:
    """A table of exogenous time series with a fixed column order.

    Attributes:
        names: Column names, in the order compiled models index them.
        values: Array of shape ``(T, len(names))``.
    """

    names: tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 2:
            raise DriverError("driver values must be a 2-D array")
        if values.shape[1] != len(self.names):
            raise DriverError(
                f"driver table has {values.shape[1]} columns but "
                f"{len(self.names)} names"
            )
        if len(set(self.names)) != len(self.names):
            raise DriverError("duplicate driver column names")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "names", tuple(self.names))

    @classmethod
    def from_mapping(cls, series: Mapping[str, Sequence[float]]) -> "DriverTable":
        """Build a table from name -> series, preserving mapping order."""
        names = tuple(series)
        if not names:
            raise DriverError("driver table needs at least one column")
        columns = [np.asarray(series[name], dtype=float) for name in names]
        lengths = {len(column) for column in columns}
        if len(lengths) != 1:
            raise DriverError(f"driver columns differ in length: {sorted(lengths)}")
        return cls(names, np.column_stack(columns))

    def __len__(self) -> int:
        return self.values.shape[0]

    def column(self, name: str) -> np.ndarray:
        """Return one column by name."""
        try:
            index = self.names.index(name)
        except ValueError:
            raise DriverError(f"no driver column named {name!r}") from None
        return self.values[:, index]

    def rows(self) -> list[tuple[float, ...]]:
        """Return rows as tuples (fast positional access in inner loops).

        The list is computed once and cached: simulators call this on
        every fitness evaluation.
        """
        cached = getattr(self, "_rows_cache", None)
        if cached is None:
            cached = [tuple(row) for row in self.values]
            object.__setattr__(self, "_rows_cache", cached)
        return cached

    def slice(self, start: int, stop: int) -> "DriverTable":
        """Return a time-sliced copy covering ``[start, stop)``."""
        if not 0 <= start <= stop <= len(self):
            raise DriverError(
                f"invalid slice [{start}, {stop}) for table of length {len(self)}"
            )
        return DriverTable(self.names, self.values[start:stop])

    def select(self, names: Iterable[str]) -> "DriverTable":
        """Return a copy restricted (and reordered) to ``names``."""
        names = tuple(names)
        indices = []
        for name in names:
            if name not in self.names:
                raise DriverError(f"no driver column named {name!r}")
            indices.append(self.names.index(name))
        return DriverTable(names, self.values[:, indices])

    def with_column(self, name: str, series: Sequence[float]) -> "DriverTable":
        """Return a copy with an extra (or replaced) column appended."""
        column = np.asarray(series, dtype=float)
        if column.shape != (len(self),):
            raise DriverError(
                f"column {name!r} has length {column.shape}, expected {len(self)}"
            )
        if name in self.names:
            values = self.values.copy()
            values[:, self.names.index(name)] = column
            return DriverTable(self.names, values)
        return DriverTable(
            self.names + (name,), np.column_stack([self.values, column])
        )
