"""Dynamic-system substrate: drivers, process models, integration."""

from repro.dynamics.drivers import DriverError, DriverTable
from repro.dynamics.integrate import (
    BatchedRollout,
    ClampSpec,
    SimulationDiverged,
    batched_euler_rollout,
    euler_steps,
    fused_euler_rollout,
    is_finite_trajectory,
    observation_error_stream,
    rk4_steps,
    safe_simulate,
    simulate,
)
from repro.dynamics.system import (
    ModelError,
    ProcessModel,
    cohort_signature,
    compile_cohort,
)
from repro.dynamics.task import BAD_FITNESS, ModelingTask

__all__ = [
    "BAD_FITNESS",
    "BatchedRollout",
    "ClampSpec",
    "ModelingTask",
    "DriverError",
    "DriverTable",
    "ModelError",
    "ProcessModel",
    "SimulationDiverged",
    "batched_euler_rollout",
    "cohort_signature",
    "compile_cohort",
    "euler_steps",
    "fused_euler_rollout",
    "is_finite_trajectory",
    "observation_error_stream",
    "rk4_steps",
    "safe_simulate",
    "simulate",
]
