"""The hydrological process: flow mass balance and attribute routing.

Implements Appendix A's flow model (equation (9)).  With water flowing
from station A to station B over travel time ``Delta``::

    F_B(t + Delta) = r_B * F_B(t) + (1 - r_A) * F_A(t) + R_B(t + Delta)

where ``r_S`` is the retention ratio at station ``S`` and ``R_B`` is the
rainfall runoff entering at B.  At a confluence (virtual station) the
incoming water bodies are merged and their attributes (nutrients,
temperature, ...) are combined as a flow-weighted average.

The hydrological process is *static* in this work (the paper does the
same): it supplies each biological process with the water-body attributes
at its station, and is also used by the synthetic dataset generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.river.network import RiverNetwork


class HydrologyError(ValueError):
    """Raised for inconsistent hydrological inputs."""


@dataclass
class HydrologicalProcess:
    """Routes flows and water-body attributes through a river network."""

    network: RiverNetwork

    def route_flows(
        self,
        headwater_flows: Mapping[str, np.ndarray],
        runoff: Mapping[str, np.ndarray] | None = None,
    ) -> dict[str, np.ndarray]:
        """Compute the flow series at every station from boundary inputs.

        Args:
            headwater_flows: Flow series (m^3/s) for each headwater station.
            runoff: Optional rainfall-runoff series per station (the
                ``R_B`` term); stations without an entry receive zero.

        Returns:
            Flow series per station, all of the common input length.
        """
        horizon = self._horizon(headwater_flows)
        runoff = runoff or {}
        flows: dict[str, np.ndarray] = {}
        for name in self.network.topological_order():
            station = self.network.station(name)
            station_runoff = self._series(runoff.get(name), horizon)
            if station.headwater:
                if name not in headwater_flows:
                    raise HydrologyError(
                        f"headwater {name} has no boundary flow series"
                    )
                flows[name] = (
                    np.asarray(headwater_flows[name], dtype=float) + station_runoff
                )
                continue
            flow = np.zeros(horizon)
            inflow = np.zeros(horizon)
            for upstream, lag in self.network.upstream_of(name):
                upstream_station = self.network.station(upstream)
                passed = (1.0 - upstream_station.retention) * flows[upstream]
                inflow += _delay(passed, lag)
            retention = station.retention
            previous = 0.0
            for t in range(horizon):
                previous = retention * previous + inflow[t] + station_runoff[t]
                flow[t] = previous
            flows[name] = flow
        return flows

    def route_attribute(
        self,
        flows: Mapping[str, np.ndarray],
        local_values: Mapping[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Propagate one water-body attribute downstream.

        Measuring stations contribute their locally observed series;
        virtual stations receive the flow-weighted average of the merged
        upstream water bodies, lagged by segment travel time (Appendix A).

        Args:
            flows: Flow series per station (from :meth:`route_flows`).
            local_values: Locally observed attribute series, one entry per
                measuring station.

        Returns:
            Attribute series per station, virtual stations included.
        """
        horizon = self._horizon(flows)
        values: dict[str, np.ndarray] = {}
        for name in self.network.topological_order():
            station = self.network.station(name)
            if not station.is_virtual:
                if name not in local_values:
                    raise HydrologyError(
                        f"measuring station {name} has no local attribute series"
                    )
                values[name] = np.asarray(local_values[name], dtype=float)
                continue
            weighted = np.zeros(horizon)
            weight = np.zeros(horizon)
            for upstream, lag in self.network.upstream_of(name):
                upstream_flow = _delay(np.asarray(flows[upstream]), lag)
                upstream_value = _delay(values[upstream], lag)
                weighted += upstream_flow * upstream_value
                weight += upstream_flow
            with np.errstate(invalid="ignore", divide="ignore"):
                merged = np.where(weight > 0, weighted / np.maximum(weight, 1e-12), 0.0)
            values[name] = merged
        return values

    def mixed_attribute_at(
        self,
        name: str,
        flows: Mapping[str, np.ndarray],
        values: Mapping[str, np.ndarray],
        retention_mixing: bool = True,
    ) -> np.ndarray:
        """The attribute of the water body *arriving* at station ``name``.

        Combines the lagged upstream water bodies by flow weight; with
        ``retention_mixing`` the retained fraction of the previous day's
        local water is mixed in, modelling side pools and non-laminar flow.
        """
        station = self.network.station(name)
        upstream = self.network.upstream_of(name)
        if not upstream:
            return np.asarray(values[name], dtype=float)
        horizon = self._horizon(flows)
        weighted = np.zeros(horizon)
        weight = np.zeros(horizon)
        for upstream_name, lag in upstream:
            upstream_station = self.network.station(upstream_name)
            flow = _delay(
                (1.0 - upstream_station.retention)
                * np.asarray(flows[upstream_name], dtype=float),
                lag,
            )
            weighted += flow * _delay(np.asarray(values[upstream_name]), lag)
            weight += flow
        with np.errstate(invalid="ignore", divide="ignore"):
            arriving = np.where(weight > 0, weighted / np.maximum(weight, 1e-12), 0.0)
        if retention_mixing and station.retention > 0:
            mixed = np.empty(horizon)
            previous = arriving[0]
            r = station.retention
            for t in range(horizon):
                previous = r * previous + (1.0 - r) * arriving[t]
                mixed[t] = previous
            return mixed
        return arriving

    @staticmethod
    def _series(values: np.ndarray | None, horizon: int) -> np.ndarray:
        if values is None:
            return np.zeros(horizon)
        values = np.asarray(values, dtype=float)
        if len(values) != horizon:
            raise HydrologyError(
                f"series length {len(values)} does not match horizon {horizon}"
            )
        return values

    @staticmethod
    def _horizon(series: Mapping[str, np.ndarray]) -> int:
        lengths = {len(values) for values in series.values()}
        if len(lengths) != 1:
            raise HydrologyError(f"input series differ in length: {sorted(lengths)}")
        return lengths.pop()


def _delay(series: np.ndarray, lag: int) -> np.ndarray:
    """Shift a series forward in time by ``lag`` days (edge-padded)."""
    if lag <= 0:
        return series.copy()
    delayed = np.empty_like(series)
    delayed[:lag] = series[0]
    delayed[lag:] = series[:-lag]
    return delayed
