"""Saving and loading synthetic river datasets.

The generator is deterministic given a config, but exporting the data
matters for two workflows: inspecting the series with external tools,
and pinning the exact arrays a result was computed on.  The format is a
single compressed ``.npz`` with a small JSON header.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.dynamics.drivers import DriverTable
from repro.river.dataset import DatasetConfig, RiverDataset, StationData
from repro.river.network import nakdong_network

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


class DatasetIOError(ValueError):
    """Raised when a file cannot be read as a river dataset."""


def save_dataset(dataset: RiverDataset, path: str | Path) -> None:
    """Write a dataset to ``path`` as compressed ``.npz``."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    header = {
        "format_version": FORMAT_VERSION,
        "config": {
            "n_years": dataset.config.n_years,
            "start_year": dataset.config.start_year,
            "train_years": dataset.config.train_years,
            "seed": dataset.config.seed,
            "sampling_noise": dataset.config.sampling_noise,
            "eutrophication_trend": dataset.config.eutrophication_trend,
            "s1_sampling_days": dataset.config.s1_sampling_days,
            "other_sampling_days": dataset.config.other_sampling_days,
            "initial_bphy": dataset.config.initial_bphy,
            "initial_bzoo": dataset.config.initial_bzoo,
            "retention": dataset.config.retention,
        },
        "stations": sorted(dataset.stations),
        "driver_names": list(
            next(iter(dataset.stations.values())).drivers.names
        ),
    }
    for name, data in dataset.stations.items():
        arrays[f"{name}/drivers"] = data.drivers.values
        arrays[f"{name}/flow"] = data.flow
        arrays[f"{name}/chlorophyll"] = data.chlorophyll
        arrays[f"{name}/true_bphy"] = data.true_bphy
        arrays[f"{name}/true_bzoo"] = data.true_bzoo
        if data.zoo_observed is not None:
            arrays[f"{name}/zoo_observed"] = data.zoo_observed
    for name, flow in dataset.flows.items():
        arrays[f"flows/{name}"] = flow
    for name, series in dataset.runoff.items():
        arrays[f"runoff/{name}"] = series
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_saved_dataset(path: str | Path) -> RiverDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    with np.load(path) as archive:
        if "__header__" not in archive:
            raise DatasetIOError(f"{path} is not a saved river dataset")
        header = json.loads(bytes(archive["__header__"]).decode("utf-8"))
        if header.get("format_version") != FORMAT_VERSION:
            raise DatasetIOError(
                f"unsupported format version {header.get('format_version')}"
            )
        config = DatasetConfig(**header["config"])
        driver_names = tuple(header["driver_names"])
        stations: dict[str, StationData] = {}
        for name in header["stations"]:
            zoo_key = f"{name}/zoo_observed"
            stations[name] = StationData(
                name=name,
                drivers=DriverTable(driver_names, archive[f"{name}/drivers"]),
                flow=archive[f"{name}/flow"],
                chlorophyll=archive[f"{name}/chlorophyll"],
                true_bphy=archive[f"{name}/true_bphy"],
                true_bzoo=archive[f"{name}/true_bzoo"],
                zoo_observed=archive[zoo_key] if zoo_key in archive else None,
            )
        network = nakdong_network()
        for station in network.stations():
            if not station.is_virtual:
                object.__setattr__(station, "retention", config.retention)
        flows = {
            key.split("/", 1)[1]: archive[key]
            for key in archive.files
            if key.startswith("flows/")
        }
        runoff = {
            key.split("/", 1)[1]: archive[key]
            for key in archive.files
            if key.startswith("runoff/")
        }
    return RiverDataset(
        config=config,
        network=network,
        stations=stations,
        flows=flows,
        runoff=runoff,
    )


def export_station_csv(
    dataset: RiverDataset, station: str, path: str | Path
) -> None:
    """Write one station's daily series as CSV (drivers + chlorophyll)."""
    data = dataset.station(station)
    path = Path(path)
    header = ",".join(
        ("day",) + data.drivers.names + ("chlorophyll", "flow")
    )
    columns = np.column_stack(
        [
            np.arange(len(data.drivers)),
            data.drivers.values,
            data.chlorophyll,
            data.flow,
        ]
    )
    np.savetxt(
        path, columns, delimiter=",", header=header, comments="", fmt="%.6g"
    )
