"""River water-quality modeling domain: the paper's case study."""

from repro.river.biology import (
    manual_equations,
    manual_model,
    seed_equations,
)
from repro.river.dataset import (
    DatasetConfig,
    HIDDEN_CONSTANTS,
    RiverDataset,
    StationData,
    generate,
    hidden_equations,
    hidden_model,
    load_dataset,
)
from repro.river.grammar_def import (
    CONNECTOR_SUMMARY,
    EXTENDER_SUMMARY,
    EXTENSION_SPECS,
    river_knowledge,
)
from repro.river.hydrology import HydrologicalProcess, HydrologyError
from repro.river.network import (
    NAKDONG_SEGMENTS_KM,
    NetworkError,
    RiverNetwork,
    Station,
    nakdong_network,
)
from repro.river.parameters import (
    CONSTANT_PRIORS,
    STATE_NAMES,
    TEMPORAL_VARIABLES,
    VARIABLE_ORDER,
    initial_constants,
)

__all__ = [
    "CONNECTOR_SUMMARY",
    "CONSTANT_PRIORS",
    "DatasetConfig",
    "EXTENDER_SUMMARY",
    "EXTENSION_SPECS",
    "HIDDEN_CONSTANTS",
    "HydrologicalProcess",
    "HydrologyError",
    "NAKDONG_SEGMENTS_KM",
    "NetworkError",
    "RiverDataset",
    "RiverNetwork",
    "STATE_NAMES",
    "Station",
    "StationData",
    "TEMPORAL_VARIABLES",
    "VARIABLE_ORDER",
    "generate",
    "hidden_equations",
    "hidden_model",
    "initial_constants",
    "load_dataset",
    "manual_equations",
    "manual_model",
    "nakdong_network",
    "river_knowledge",
    "seed_equations",
]
