"""The river revision grammar (paper Table II) and prior knowledge bundle.

Table II fixes, for every extension point, the variables that may be
introduced and the operators allowed: ``+`` is the connector for
extensions 1-3 (whole-equation level), ``*`` for extensions 5-9
(rate subprocesses), and the full ``+ - * / log exp`` set is available to
extenders everywhere.  These reflect the freshwater ecologist's judgement
of which influences are plausible where -- e.g. electric conductivity
(``Vcd``) may enter the phytoplankton dynamics (Ext1) but not the
zooplankton dynamics (Ext2).
"""

from __future__ import annotations

from repro.gp.knowledge import (
    BINARY_REVISION_OPS,
    ExtensionSpec,
    PriorKnowledge,
    UNARY_REVISION_OPS,
)
from repro.river.biology import seed_equations
from repro.river.parameters import CONSTANT_PRIORS

#: Table II, row by row.  The paper's numbering has no Ext4.
EXTENSION_SPECS: tuple[ExtensionSpec, ...] = (
    ExtensionSpec(
        "Ext1",
        variables=("Vcd", "Vph", "Valk"),
        connector_ops=("+",),
    ),
    ExtensionSpec(
        "Ext2",
        variables=("Vsd",),
        connector_ops=("+",),
    ),
    ExtensionSpec(
        "Ext3",
        variables=("Vdo", "Vph", "Valk"),
        connector_ops=("+",),
    ),
    ExtensionSpec("Ext5", variables=("Vtmp",), connector_ops=("*",)),
    ExtensionSpec("Ext6", variables=("Vtmp",), connector_ops=("*",)),
    ExtensionSpec("Ext7", variables=("Vtmp",), connector_ops=("*",)),
    ExtensionSpec("Ext8", variables=("Vtmp",), connector_ops=("*",)),
    ExtensionSpec("Ext9", variables=("Vtmp",), connector_ops=("*",)),
)

#: Summary used when reprinting Table II.
CONNECTOR_SUMMARY = "+ for extensions 1-3, * for extensions 5-9"
EXTENDER_SUMMARY = ", ".join(BINARY_REVISION_OPS + UNARY_REVISION_OPS)


#: Expert knowledge of typical levels of the revision variables; new
#: influences enter as anomalies around these (see
#: :class:`repro.gp.knowledge.PriorKnowledge.variable_levels`).
VARIABLE_LEVELS: dict[str, float] = {
    "Vtmp": 14.0,
    "Vph": 7.9,
    "Valk": 45.0,
    "Vcd": 300.0,
    "Vdo": 10.0,
    "Vsd": 1.8,
}


def river_knowledge(
    rconst_bounds: tuple[float, float] = (-1000.0, 1000.0),
) -> PriorKnowledge:
    """The complete prior-knowledge input for river water-quality modeling.

    Combines the expert process (:func:`repro.river.biology.seed_equations`),
    the Table II revision specs, the Table III parameter priors, and the
    typical levels of the revision variables.
    """
    return PriorKnowledge(
        seed_equations=seed_equations(),
        priors=dict(CONSTANT_PRIORS),
        extensions=list(EXTENSION_SPECS),
        rconst_bounds=rconst_bounds,
        rconst_init=(0.0, 1.0),
        variable_levels=dict(VARIABLE_LEVELS),
    )
