"""Synthetic Nakdong-like dataset (the paper's Section IV-A, substituted).

The original study uses 13 years (1996-2008) of measurements at nine
stations of the Nakdong River catchment.  That dataset is not publicly
redistributable, so this module synthesises a statistically similar one:

1. **Climate** -- seasonal irradiance and water temperature with AR(1)
   weather noise; a summer (July-August) monsoon drives rainfall storms.
2. **Hydrology** -- headwater base flows plus storm runoff are routed
   through the Nakdong network with the mass-balance process of
   Appendix A (:mod:`repro.river.hydrology`).
3. **Water chemistry** -- nutrient, pH, alkalinity and conductivity series
   per station, with dilution/concentration effects of flow, a slow
   eutrophication trend across years, and flow-weighted mixing at
   confluences.
4. **Biology** -- a *hidden* ecological truth, richer than the expert
   seed, produces the plankton fields:

   * at headwater stations a free-running hidden model (with light
     self-shading and hydraulic washout for self-limitation) generates
     the boundary plankton;
   * at downstream stations a hidden *local* model -- the expert process
     plus a pH/alkalinity input flux, a pH-dependent growth modifier and
     a temperature-dependent zooplankton mortality (the kinds of revision
     the paper reports GMR discovering, eqs. (7)-(8)) -- is advected
     through the network by the river-system simulator
     (:mod:`repro.river.simulator`), exactly the harness later used to
     evaluate candidate models.

5. **Sampling** -- chlorophyll-a and nutrients are "measured" weekly at S1
   and bi-weekly elsewhere with multiplicative noise, then linearly
   interpolated back to daily values, exactly as the paper describes
   preprocessing its field data.

Because the data-generating process is known, the reproduction can ask a
crisp question: does knowledge-guided revision recover structure that
calibration of the seed model cannot?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.dynamics.drivers import DriverTable
from repro.dynamics.integrate import ClampSpec, simulate
from repro.dynamics.system import ProcessModel
from repro.dynamics.task import ModelingTask
from repro.expr import ast
from repro.expr.ast import Expr, Param, State, Var
from repro.river import biology
from repro.river.hydrology import HydrologicalProcess
from repro.river.network import RiverNetwork, nakdong_network
from repro.river.parameters import STATE_NAMES, VARIABLE_ORDER
from repro.river.simulator import (
    RiverSystemSimulator,
    RiverTask,
    build_mixing_schedules,
)

DAYS_PER_YEAR = 365

#: Hidden-truth parameter values.  Deliberately *different* from the
#: Table III expected values (within their bounds), so that parameter
#: calibration has real work to do.
HIDDEN_CONSTANTS: dict[str, float] = {
    "CUA": 0.9,
    "CUZ": 0.25,
    "CBRA": 0.04,
    "CBRZ": 0.06,
    "CMFR": 0.30,
    "CDZ": 0.05,
    "CFS": 5.5,
    "CBTP1": 26.0,
    "CBTP2": 7.0,
    "CFmin": 0.8,
    "CBL": 27.5,
    "CN": 0.03,
    "CP": 0.002,
    "CSI": 0.005,
    "CBMT": 0.05,
    "CPT": 0.006,
    # Hidden-only structure coefficients (not part of Table III).
    "HALK": 0.06,  # alkalinity/pH input-flux scale
    "HPH0": 6.5,  # pH offset in the input-flux denominator
    "HPHG": 0.45,  # pH growth-modifier slope
    "HPHC": 8.1,  # pH growth-modifier centre
    "HTZ1": 0.08,  # zooplankton-mortality temperature slope
    "HTZ0": 0.1,  # zooplankton-mortality temperature intercept
    "HCD": 0.015,  # conductivity (pollution/storm proxy) loss-flux scale
    "HCD0": 280.0,  # conductivity baseline
    "HSH": 25.0,  # headwater light self-shading half-saturation (ug/L)
    "KFL": 0.20,  # headwater phytoplankton washout rate (day^-1)
    "KFLZ": 0.05,  # headwater zooplankton washout rate (day^-1)
}

#: Per-station mean nutrient levels (tributaries are more agricultural).
_STATION_NUTRIENTS: dict[str, tuple[float, float, float]] = {
    # (nitrogen mg/L, phosphorus mg/L, silica mg/L)
    "S6": (1.8, 0.050, 3.0),
    "S5": (2.0, 0.060, 3.2),
    "S4": (2.2, 0.070, 3.4),
    "S3": (2.4, 0.080, 3.6),
    "S2": (2.6, 0.090, 3.8),
    "S1": (2.8, 0.100, 4.0),
    "T1": (3.4, 0.140, 4.5),
    "T2": (3.2, 0.120, 4.2),
    "T3": (3.0, 0.110, 4.0),
}

#: Headwater base flows (m^3/s-ish arbitrary units).
_HEADWATER_BASE_FLOW: dict[str, float] = {
    "S6": 80.0,
    "T3": 18.0,
    "T2": 22.0,
    "T1": 16.0,
}


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs of the synthetic dataset generator."""

    n_years: int = 13
    start_year: int = 1996
    train_years: int = 10
    seed: int = 7
    sampling_noise: float = 0.05
    eutrophication_trend: float = 0.015
    s1_sampling_days: int = 7
    other_sampling_days: int = 14
    initial_bphy: float = 5.0
    initial_bzoo: float = 2.0
    retention: float = 0.25

    @property
    def n_days(self) -> int:
        return self.n_years * DAYS_PER_YEAR

    @property
    def train_days(self) -> int:
        return self.train_years * DAYS_PER_YEAR


@dataclass
class StationData:
    """All synthesised series of one measuring station."""

    name: str
    drivers: DriverTable
    flow: np.ndarray
    chlorophyll: np.ndarray
    true_bphy: np.ndarray
    true_bzoo: np.ndarray
    zoo_observed: np.ndarray | None = None


@dataclass
class RiverDataset:
    """The full synthetic catchment dataset."""

    config: DatasetConfig
    network: RiverNetwork
    stations: dict[str, StationData]
    flows: dict[str, np.ndarray] = field(default_factory=dict)
    runoff: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n_days(self) -> int:
        return self.config.n_days

    def station(self, name: str) -> StationData:
        try:
            return self.stations[name]
        except KeyError:
            raise KeyError(f"no data for station {name!r}") from None

    def split_indices(self) -> tuple[slice, slice]:
        """(train, test) day slices: first ``train_years``, then the rest."""
        train_days = self.config.train_days
        return slice(0, train_days), slice(train_days, self.n_days)

    def _window(self, period: str) -> slice:
        train_slice, test_slice = self.split_indices()
        if period == "train":
            return train_slice
        if period == "test":
            return test_slice
        if period == "all":
            return slice(0, self.n_days)
        raise ValueError(f"unknown period {period!r}")

    def river_task(self, period: str = "train", station: str = "S1") -> RiverTask:
        """The paper's forecasting task: the network-coupled evaluation.

        Candidate biological models run at every non-headwater station,
        advected by the known hydrological process (Appendix A), with
        observed plankton at the headwaters as boundary conditions; the
        fitness target is the observed chlorophyll-a at ``station``.
        """
        window = self._window(period)
        start = window.start or 0
        headwaters = {s.name for s in self.network.headwaters()}
        schedules = build_mixing_schedules(self.network, self.flows, self.runoff)
        sliced_schedules = {}
        for name, schedule in schedules.items():
            sliced_schedules[name] = type(schedule)(
                station=schedule.station,
                sources=schedule.sources,
                retained_frac=schedule.retained_frac[window],
                source_frac=[frac[window] for frac in schedule.source_frac],
                runoff_frac=schedule.runoff_frac[window],
            )
        drivers = {
            name: DriverTable(
                data.drivers.names, data.drivers.values[window]
            )
            for name, data in self.stations.items()
            if name not in headwaters
        }
        boundary = {}
        for name in headwaters:
            data = self.stations[name]
            boundary[name] = {
                "BPhy": data.chlorophyll[window],
                "BZoo": data.zoo_observed[window],
            }
        initial_states = {}
        for name in drivers:
            data = self.stations[name]
            initial_states[name] = (
                float(data.chlorophyll[start]),
                float(data.true_bzoo[start]),
            )
        simulator = RiverSystemSimulator(
            network=self.network,
            schedules=sliced_schedules,
            drivers=drivers,
            boundary=boundary,
            initial_states=initial_states,
            clamp=ClampSpec(minimum=1e-3, maximum=1e7),
        )
        return RiverTask(
            simulator=simulator,
            observed=self.station(station).chlorophyll[window],
            target_station=station,
            target_state="BPhy",
            state_names=STATE_NAMES,
            var_order=VARIABLE_ORDER,
        )

    def task(self, period: str = "train", station: str = "S1") -> ModelingTask:
        """A simplified *isolated-station* task (no network coupling).

        The biological model free-runs at one station.  This variant is
        used by unit tests and the quickstart example; the paper's actual
        evaluation is :meth:`river_task`.
        """
        data = self.station(station)
        window = self._window(period)
        drivers = DriverTable(data.drivers.names, data.drivers.values[window])
        observed = data.chlorophyll[window]
        start = window.start or 0
        if start == 0:
            initial = (self.config.initial_bphy, self.config.initial_bzoo)
        else:
            initial = (
                float(data.chlorophyll[start]),
                float(data.true_bzoo[start]),
            )
        return ModelingTask(
            drivers=drivers,
            observed=observed,
            target_state="BPhy",
            state_names=STATE_NAMES,
            initial_state=initial,
            clamp=ClampSpec(minimum=1e-3, maximum=1e7),
        )


def hidden_local_equations() -> dict[str, Expr]:
    """The hidden local biology advected through the network.

    The expert process plus three structural extras, *all reachable by the
    revision grammar*: an alkalinity/pH input flux (Ext1-style), a pH
    growth modifier (Ext3-style), and a temperature-dependent zooplankton
    mortality (Ext9-style).  These mirror the revisions reported in the
    paper's ecological analysis (eqs. (7)-(8)).
    """
    bphy, bzoo = State("BPhy"), State("BZoo")
    mu = ast.add(
        biology.photosynthetic_productivity(),
        ast.mul(Param("HPHG"), ast.sub(Var("Vph"), Param("HPHC"))),
    )
    phi = biology.grazing_pressure()
    growth = ast.mul(bphy, ast.sub(mu, Param("CBRA")))
    ph_flux = ast.div(
        ast.mul(Param("HALK"), Var("Valk")),
        ast.sub(Var("Vph"), Param("HPH0")),
    )
    cd_flux = ast.mul(
        Param("HCD"), ast.sub(Var("Vcd"), Param("HCD0"))
    )
    eq_p = ast.sub(
        ast.add(ast.sub(growth, ast.mul(bzoo, phi)), ph_flux), cd_flux
    )

    mu_z = biology.zooplankton_growth()
    gamma_z = biology.zooplankton_respiration(phi)
    delta_z = ast.mul(
        Param("CDZ"),
        ast.add(ast.mul(Param("HTZ1"), Var("Vtmp")), Param("HTZ0")),
    )
    eq_z = ast.mul(bzoo, ast.sub(ast.sub(mu_z, gamma_z), delta_z))
    return {"BPhy": eq_p, "BZoo": eq_z}


def hidden_local_model() -> ProcessModel:
    """The hidden local process model (standard Table IV drivers)."""
    return ProcessModel.from_equations(
        hidden_local_equations(), var_order=VARIABLE_ORDER
    )


def hidden_headwater_equations() -> dict[str, Expr]:
    """The free-running hidden model generating headwater boundaries.

    Same structure as :func:`hidden_local_equations` plus light
    self-shading (``HSH``) and flow-driven washout (``KFL``/``KFLZ``,
    using the extra ``Vflw`` driver) so a decade-long standalone
    simulation stays on a realistic attractor.  These two extras are
    *outside* the revision grammar, but candidate models never have to
    reproduce them: headwater plankton enters evaluation as observed
    boundary data.
    """
    bphy, bzoo = State("BPhy"), State("BZoo")
    mu = ast.add(
        biology.photosynthetic_productivity(),
        ast.mul(Param("HPHG"), ast.sub(Var("Vph"), Param("HPHC"))),
    )
    shading = ast.div(Param("HSH"), ast.add(Param("HSH"), bphy))
    mu = ast.mul(mu, shading)
    phi = biology.grazing_pressure()
    growth = ast.mul(bphy, ast.sub(mu, Param("CBRA")))
    ph_flux = ast.div(
        ast.mul(Param("HALK"), Var("Valk")),
        ast.sub(Var("Vph"), Param("HPH0")),
    )
    washout_p = ast.mul(ast.mul(Param("KFL"), Var("Vflw")), bphy)
    eq_p = ast.sub(
        ast.add(ast.sub(growth, ast.mul(bzoo, phi)), ph_flux), washout_p
    )

    mu_z = biology.zooplankton_growth()
    gamma_z = biology.zooplankton_respiration(phi)
    delta_z = ast.mul(
        Param("CDZ"),
        ast.add(ast.mul(Param("HTZ1"), Var("Vtmp")), Param("HTZ0")),
    )
    washout_z = ast.mul(ast.mul(Param("KFLZ"), Var("Vflw")), bzoo)
    eq_z = ast.sub(
        ast.mul(bzoo, ast.sub(ast.sub(mu_z, gamma_z), delta_z)), washout_z
    )
    return {"BPhy": eq_p, "BZoo": eq_z}


def hidden_headwater_model() -> ProcessModel:
    """The headwater hidden model (extra driver: normalised flow)."""
    return ProcessModel.from_equations(
        hidden_headwater_equations(), var_order=VARIABLE_ORDER + ("Vflw",)
    )


#: Backwards-compatible aliases: the "hidden model" of the dataset is the
#: headwater (free-running) variant.
hidden_equations = hidden_headwater_equations
hidden_model = hidden_headwater_model


def _seasonal(day: np.ndarray, amplitude: float, phase_day: float) -> np.ndarray:
    return amplitude * np.sin(2.0 * np.pi * (day - phase_day) / DAYS_PER_YEAR)


def _ar1(
    rng: np.random.Generator, n: int, sigma: float, rho: float
) -> np.ndarray:
    noise = rng.normal(0.0, sigma, size=n)
    series = np.empty(n)
    value = 0.0
    scale = np.sqrt(max(1.0 - rho * rho, 1e-9))
    for index in range(n):
        value = rho * value + scale * noise[index]
        series[index] = value
    return series


def _sample_and_interpolate(
    rng: np.random.Generator,
    series: np.ndarray,
    interval_days: int,
    relative_noise: float,
) -> np.ndarray:
    """Measure every ``interval_days`` with noise; linearly interpolate.

    Mirrors the paper's preprocessing: weekly / bi-weekly measurements are
    linearly interpolated to daily values.
    """
    n = len(series)
    sample_days = np.arange(0, n, interval_days)
    factors = np.exp(rng.normal(0.0, relative_noise, size=len(sample_days)))
    samples = series[sample_days] * factors
    return np.interp(np.arange(n), sample_days, samples)


def _climate(
    rng: np.random.Generator, n_days: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Irradiance, water temperature, and rainfall for the whole basin."""
    day = np.arange(n_days, dtype=float)
    light = 16.0 + _seasonal(day, 10.0, 110.0) + _ar1(rng, n_days, 2.5, 0.7)
    light = np.clip(light, 1.0, 32.0)
    temperature = (
        14.0 + _seasonal(day, 11.0, 120.0) + _ar1(rng, n_days, 1.3, 0.85)
    )
    temperature = np.clip(temperature, 0.5, 33.0)
    doy = day % DAYS_PER_YEAR
    monsoon = np.where((doy > 180) & (doy < 250), 6.0, 1.0)
    storms = rng.exponential(1.0, size=n_days) * (
        rng.random(n_days) < 0.08 * monsoon
    )
    rainfall = monsoon * 0.8 + 12.0 * storms
    return light, temperature, rainfall


def generate(config: DatasetConfig = DatasetConfig()) -> RiverDataset:
    """Synthesise the full 13-year, nine-station dataset."""
    rng = np.random.default_rng(config.seed)
    network = nakdong_network()
    for station in network.stations():
        if not station.is_virtual:
            object.__setattr__(station, "retention", config.retention)
    hydrology = HydrologicalProcess(network)
    n_days = config.n_days
    day = np.arange(n_days, dtype=float)
    year = day / DAYS_PER_YEAR

    light, temperature, rainfall = _climate(rng, n_days)

    measuring = [station.name for station in network.measuring_stations()]
    headwaters = {station.name for station in network.headwaters()}

    # --- hydrology ------------------------------------------------------
    headwater_flows = {}
    runoff = {}
    for name in measuring:
        coefficient = 2.5 if name.startswith("S") else 0.8
        runoff[name] = coefficient * rainfall * np.exp(
            _ar1(rng, n_days, 0.2, 0.5)
        )
        if name in headwaters:
            base = _HEADWATER_BASE_FLOW[name]
            headwater_flows[name] = np.clip(
                base
                * (1.0 + 0.35 * np.sin(2.0 * np.pi * (day - 200.0) / DAYS_PER_YEAR))
                * np.exp(_ar1(rng, n_days, 0.25, 0.9)),
                base * 0.2,
                base * 6.0,
            )
    flows = hydrology.route_flows(headwater_flows, runoff)

    # --- per-station physicochemical series ------------------------------
    local: dict[str, dict[str, np.ndarray]] = {}
    for name in measuring:
        base_n, base_p, base_si = _STATION_NUTRIENTS[name]
        flow = flows[name]
        dilution = np.clip(
            (np.median(flow) / np.maximum(flow, 1e-6)) ** 0.3, 0.5, 2.0
        )
        trend = 1.0 + config.eutrophication_trend * year
        season_n = 1.0 + 0.3 * np.sin(2.0 * np.pi * (day - 60.0) / DAYS_PER_YEAR)
        station_temperature = np.clip(
            temperature + rng.normal(0.0, 0.4, n_days), 0.5, 33.0
        )
        station_light = np.clip(light + rng.normal(0.0, 0.8, n_days), 1.0, 32.0)
        vn = np.clip(
            base_n * trend * season_n * dilution
            * np.exp(_ar1(rng, n_days, 0.10, 0.8)),
            0.05,
            8.0,
        )
        vp = np.clip(
            base_p * trend * season_n * dilution
            * np.exp(_ar1(rng, n_days, 0.15, 0.8)),
            0.002,
            0.5,
        )
        vsi = np.clip(
            base_si * trend * dilution * np.exp(_ar1(rng, n_days, 0.12, 0.8)),
            0.1,
            12.0,
        )
        light_anomaly = (station_light - np.mean(station_light)) / np.std(
            station_light
        )
        vph = np.clip(
            7.9
            + 0.45 * np.sin(2.0 * np.pi * (day - 150.0) / DAYS_PER_YEAR)
            + 0.10 * light_anomaly
            + _ar1(rng, n_days, 0.35, 0.92),
            6.8,
            9.8,
        )
        valk = np.clip(
            45.0
            + 10.0 * np.sin(2.0 * np.pi * (day - 330.0) / DAYS_PER_YEAR)
            + _ar1(rng, n_days, 1.2, 0.98) * 6.0,
            20.0,
            90.0,
        )
        vcd = np.clip(
            280.0
            + 120.0 * (vn / base_n - 1.0)
            + 80.0 * (1.0 / dilution - 1.0)
            + _ar1(rng, n_days, 18.0, 0.8),
            150.0,
            800.0,
        )
        local[name] = {
            "Vlgt": station_light,
            "Vn": vn,
            "Vp": vp,
            "Vsi": vsi,
            "Vtmp": station_temperature,
            "Vph": vph,
            "Valk": valk,
            "Vcd": vcd,
        }

    # Blend routed upstream water with local sources for mixable chemistry.
    mixable = ("Vn", "Vp", "Vsi", "Vtmp", "Vph", "Valk", "Vcd")
    routed: dict[str, dict[str, np.ndarray]] = {name: {} for name in network.graph}
    for variable in mixable:
        values: dict[str, np.ndarray] = {}
        for name in network.topological_order():
            station = network.station(name)
            if station.is_virtual:
                values[name] = hydrology.mixed_attribute_at(
                    name, flows, values, retention_mixing=False
                )
            elif name in headwaters:
                values[name] = local[name][variable]
            else:
                arriving = hydrology.mixed_attribute_at(
                    name, flows, values, retention_mixing=True
                )
                values[name] = 0.6 * arriving + 0.4 * local[name][variable]
        for name, series in values.items():
            routed[name][variable] = series

    def station_columns(name: str) -> dict[str, np.ndarray]:
        source = routed[name] if name not in headwaters else local[name]
        return {
            "Vlgt": local[name]["Vlgt"],
            "Vn": source["Vn"],
            "Vp": source["Vp"],
            "Vsi": source["Vsi"],
            "Vtmp": source["Vtmp"] if name not in headwaters else local[name]["Vtmp"],
            "Vdo": np.zeros(n_days),
            "Vcd": source["Vcd"],
            "Vph": source["Vph"],
            "Valk": source["Valk"],
            "Vsd": np.zeros(n_days),
        }

    # --- hidden biology ---------------------------------------------------
    # Headwaters: free-running hidden model with self-limitation.
    truth_head = hidden_headwater_model()
    head_params = tuple(
        HIDDEN_CONSTANTS[key] for key in truth_head.param_order
    )
    bphy: dict[str, np.ndarray] = {}
    bzoo: dict[str, np.ndarray] = {}
    for name in sorted(headwaters):
        columns = station_columns(name)
        columns["Vflw"] = flows[name] / np.median(flows[name])
        table = DriverTable.from_mapping(
            {key: columns[key] for key in VARIABLE_ORDER + ("Vflw",)}
        )
        trajectory = simulate(
            truth_head,
            head_params,
            table,
            (config.initial_bphy, config.initial_bzoo),
            clamp=ClampSpec(minimum=1e-3, maximum=5e3),
        )
        bphy[name] = trajectory[:, 0]
        bzoo[name] = trajectory[:, 1]

    # Downstream: hidden local model advected by the river simulator.
    truth_local = hidden_local_model()
    local_params = tuple(
        HIDDEN_CONSTANTS[key] for key in truth_local.param_order
    )
    schedules = build_mixing_schedules(network, flows, runoff)
    downstream = [name for name in measuring if name not in headwaters]
    driver_tables = {
        name: DriverTable.from_mapping(
            {key: station_columns(name)[key] for key in VARIABLE_ORDER}
        )
        for name in downstream
    }
    simulator = RiverSystemSimulator(
        network=network,
        schedules=schedules,
        drivers=driver_tables,
        boundary={
            name: {"BPhy": bphy[name], "BZoo": bzoo[name]}
            for name in headwaters
        },
        initial_states={
            name: (config.initial_bphy, config.initial_bzoo)
            for name in downstream
        },
        clamp=ClampSpec(minimum=1e-3, maximum=5e3),
    )
    trajectories = simulator.run(truth_local, local_params)
    for name in downstream:
        bphy[name] = trajectories[name][:, 0]
        bzoo[name] = trajectories[name][:, 1]

    # --- algae-dependent physics (DO, transparency) -----------------------
    stations: dict[str, StationData] = {}
    for name in measuring:
        temperature_series = (
            routed[name]["Vtmp"] if name not in headwaters else local[name]["Vtmp"]
        )
        saturation = 14.6 - 0.38 * temperature_series + 0.006 * temperature_series**2
        vdo = np.clip(
            saturation - 0.008 * bphy[name] + _ar1(rng, n_days, 0.5, 0.7),
            3.0,
            16.0,
        )
        flow = flows[name]
        vsd = np.clip(
            2.2
            - 0.004 * bphy[name]
            - 0.35 * np.log(np.maximum(flow / np.median(flow), 1e-3))
            + _ar1(rng, n_days, 0.15, 0.8),
            0.2,
            3.5,
        )

        interval = (
            config.s1_sampling_days if name == "S1" else config.other_sampling_days
        )
        chlorophyll = _sample_and_interpolate(
            rng, bphy[name], interval, config.sampling_noise
        )
        zoo_observed = None
        if name in headwaters:
            zoo_observed = np.clip(
                _sample_and_interpolate(
                    rng, bzoo[name], interval, config.sampling_noise
                ),
                0.0,
                None,
            )
        source = routed[name] if name not in headwaters else local[name]
        sampled_nutrients = {
            variable: _sample_and_interpolate(
                rng, source[variable], interval, config.sampling_noise * 0.5
            )
            for variable in ("Vn", "Vp", "Vsi")
        }
        series = {
            "Vlgt": local[name]["Vlgt"],
            "Vn": sampled_nutrients["Vn"],
            "Vp": sampled_nutrients["Vp"],
            "Vsi": sampled_nutrients["Vsi"],
            "Vtmp": source["Vtmp"] if name not in headwaters else local[name]["Vtmp"],
            "Vdo": vdo,
            "Vcd": source["Vcd"],
            "Vph": source["Vph"],
            "Valk": source["Valk"],
            "Vsd": vsd,
        }
        drivers = DriverTable.from_mapping(
            {variable: series[variable] for variable in VARIABLE_ORDER}
        )
        stations[name] = StationData(
            name=name,
            drivers=drivers,
            flow=flow,
            chlorophyll=np.clip(chlorophyll, 0.0, None),
            true_bphy=bphy[name],
            true_bzoo=bzoo[name],
            zoo_observed=zoo_observed,
        )

    return RiverDataset(
        config=config,
        network=network,
        stations=stations,
        flows=flows,
        runoff=runoff,
    )


@lru_cache(maxsize=4)
def _cached_generate(
    n_years: int, seed: int, train_years: int
) -> RiverDataset:
    return generate(
        DatasetConfig(n_years=n_years, seed=seed, train_years=train_years)
    )


def load_dataset(
    n_years: int = 13, seed: int = 7, train_years: int = 10
) -> RiverDataset:
    """Generate (or fetch from the in-process cache) a standard dataset."""
    return _cached_generate(n_years, seed, train_years)
