"""The expert-written biological process (paper equations (1)-(2), (5)-(6)).

Models the change of phytoplankton biomass over time through the interplay
of phytoplankton (``BPhy``) and zooplankton (``BZoo``):

* phytoplankton: photosynthetic productivity ``mu_Phy`` (light, nutrient
  and temperature limited), metabolic degradation ``gamma_Phy``, and
  zooplankton grazing pressure ``phi``;
* zooplankton: growth ``mu_Zoo``, respiration ``gamma_Zoo`` and death
  ``delta_Zoo``.

:func:`seed_equations` returns the equations with the paper's nine
extension points marked (``Ext1``-``Ext3``, ``Ext5``-``Ext9``; the paper's
numbering skips 4), which is the "plausible processes" prior-knowledge
input to GMR.  :func:`manual_model` returns the plain expert model (the
MANUAL baseline and the substrate for model calibration).
"""

from __future__ import annotations

from repro.dynamics.system import ProcessModel
from repro.expr import ast
from repro.expr.ast import Const, Expr, Ext, Param, State, Var
from repro.river.parameters import STATE_NAMES, VARIABLE_ORDER

_BPHY = State("BPhy")
_BZOO = State("BZoo")


def light_limitation() -> Expr:
    """``f(Vlgt) = (Vlgt/CBL) * e^(1 - Vlgt/CBL)`` -- Steele's light curve."""
    ratio = ast.div(Var("Vlgt"), Param("CBL"))
    return ast.mul(ratio, ast.exp(ast.sub(Const(1.0), ratio)))


def nutrient_limitation() -> Expr:
    """``g(Vn, Vp, Vsi)`` -- Liebig minimum of Monod terms."""
    terms = []
    for var_name, param_name in (("Vn", "CN"), ("Vp", "CP"), ("Vsi", "CSI")):
        variable = Var(var_name)
        terms.append(ast.div(variable, ast.add(Param(param_name), variable)))
    return ast.minimum(*terms)


def temperature_limitation() -> Expr:
    """``h(Vtmp)`` -- double optimum for summer cyanobacteria (CBTP1) and
    winter diatom (CBTP2) blooms."""
    temperature = Var("Vtmp")

    def bell(optimum_param: str) -> Expr:
        offset = ast.sub(temperature, Param(optimum_param))
        return ast.exp(ast.neg(ast.mul(Param("CPT"), ast.mul(offset, offset))))

    return ast.maximum(bell("CBTP1"), bell("CBTP2"))


def food_saturation() -> Expr:
    """``lambda_Phy = (BPhy - CFmin) / (CFS + BPhy - CFmin)``."""
    available = ast.sub(_BPHY, Param("CFmin"))
    return ast.div(available, ast.add(Param("CFS"), available))


def photosynthetic_productivity() -> Expr:
    """``mu_Phy = CUA * f(Vlgt) * g(Vn,Vp,Vsi) * h(Vtmp)``."""
    return ast.mul(
        ast.mul(
            ast.mul(Param("CUA"), light_limitation()), nutrient_limitation()
        ),
        temperature_limitation(),
    )


def grazing_pressure() -> Expr:
    """``phi = CMFR * lambda_Phy``."""
    return ast.mul(Param("CMFR"), food_saturation())


def zooplankton_growth() -> Expr:
    """``mu_Zoo = CUZ * lambda_Phy``."""
    return ast.mul(Param("CUZ"), food_saturation())


def zooplankton_respiration(phi: Expr) -> Expr:
    """``gamma_Zoo = CBRZ + CBMT * phi`` (CBRZ part is extensible)."""
    return ast.add(Param("CBRZ"), ast.mul(Param("CBMT"), phi))


def _phyto_equation(with_ext: bool) -> Expr:
    mu_phy = photosynthetic_productivity()
    gamma_phy: Expr = Param("CBRA")
    phi = grazing_pressure()
    if with_ext:
        mu_phy = Ext("Ext3", mu_phy)
        gamma_phy = Ext("Ext5", gamma_phy)
        phi = Ext("Ext6", phi)
    growth = ast.mul(_BPHY, ast.sub(mu_phy, gamma_phy))
    equation = ast.sub(growth, ast.mul(_BZOO, phi))
    if with_ext:
        equation = Ext("Ext1", equation)
    return equation


def _zoo_equation(with_ext: bool) -> Expr:
    mu_zoo = zooplankton_growth()
    phi = grazing_pressure()
    delta_zoo: Expr = Param("CDZ")
    if with_ext:
        mu_zoo = Ext("Ext7", mu_zoo)
        delta_zoo = Ext("Ext9", delta_zoo)
        gamma_zoo = ast.add(
            Ext("Ext8", Param("CBRZ")), ast.mul(Param("CBMT"), phi)
        )
    else:
        gamma_zoo = zooplankton_respiration(phi)
    balance = ast.sub(ast.sub(mu_zoo, gamma_zoo), delta_zoo)
    equation = ast.mul(_BZOO, balance)
    if with_ext:
        equation = Ext("Ext2", equation)
    return equation


def seed_equations() -> dict[str, Expr]:
    """The expert process with extension points marked (eqs. (5)-(6))."""
    return {
        "BPhy": _phyto_equation(with_ext=True),
        "BZoo": _zoo_equation(with_ext=True),
    }


def manual_equations() -> dict[str, Expr]:
    """The plain expert process, no extension markers (eqs. (1)-(2))."""
    return {
        "BPhy": _phyto_equation(with_ext=False),
        "BZoo": _zoo_equation(with_ext=False),
    }


def manual_model() -> ProcessModel:
    """The MANUAL baseline as a ready-to-simulate process model."""
    return ProcessModel.from_equations(
        manual_equations(), var_order=VARIABLE_ORDER
    )


def state_names() -> tuple[str, ...]:
    return STATE_NAMES
