"""The river system as a directed acyclic graph (paper Figures 8 and 12).

A river system is modelled as a DAG whose nodes are measuring stations and
whose edges are river segments.  Confluences -- where a tributary meets the
main channel -- are represented by *virtual stations* (Appendix A).  The
Nakdong catchment of the case study has six main-channel stations
(S1 downstream ... S6 upstream), three tributary stations (T1-T3), and
three virtual stations at the confluences S6*T3, S4*T2 and S3*T1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx


class NetworkError(ValueError):
    """Raised for invalid river-network topologies."""


@dataclass(frozen=True)
class Station:
    """One monitoring point on the river.

    Attributes:
        name: Station identifier (e.g. ``"S1"``).
        is_virtual: True for confluence (virtual) stations, which carry no
            measurements of their own -- their water attributes come from
            flow-weighted merging of the upstream water bodies.
        retention: Fraction of the water body retained at the station per
            day (the ``r_S`` of equation (9)).
        headwater: True for stations with no upstream station; their flow
            is a boundary condition.
    """

    name: str
    is_virtual: bool = False
    retention: float = 0.1
    headwater: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.retention < 1.0:
            raise NetworkError(
                f"retention of {self.name} must be in [0, 1), "
                f"got {self.retention}"
            )


@dataclass
class RiverNetwork:
    """A DAG of stations with per-segment distances and travel times.

    Attributes:
        graph: ``networkx.DiGraph`` with ``Station`` objects as node data
            (key ``station``) and ``distance_km`` / ``lag_days`` edge data.
        flow_velocity_km_per_day: Used to convert segment distance into the
            integer travel lag ``Delta`` of equation (9).
    """

    flow_velocity_km_per_day: float = 25.0
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def add_station(self, station: Station) -> None:
        if station.name in self.graph:
            raise NetworkError(f"duplicate station {station.name!r}")
        self.graph.add_node(station.name, station=station)

    def add_segment(self, upstream: str, downstream: str, distance_km: float) -> None:
        """Connect two stations with a river segment of the given length."""
        for name in (upstream, downstream):
            if name not in self.graph:
                raise NetworkError(f"unknown station {name!r}")
        if distance_km < 0:
            raise NetworkError("segment distance must be non-negative")
        lag = max(1, round(distance_km / self.flow_velocity_km_per_day))
        self.graph.add_edge(
            upstream, downstream, distance_km=distance_km, lag_days=lag
        )
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_edge(upstream, downstream)
            raise NetworkError(
                f"segment {upstream}->{downstream} would create a cycle"
            )

    def station(self, name: str) -> Station:
        try:
            return self.graph.nodes[name]["station"]
        except KeyError:
            raise NetworkError(f"unknown station {name!r}") from None

    def stations(self) -> list[Station]:
        return [self.station(name) for name in self.graph.nodes]

    def measuring_stations(self) -> list[Station]:
        return [station for station in self.stations() if not station.is_virtual]

    def headwaters(self) -> list[Station]:
        return [station for station in self.stations() if station.headwater]

    def upstream_of(self, name: str) -> list[tuple[str, int]]:
        """(upstream station, lag in days) pairs feeding ``name``."""
        return [
            (upstream, self.graph.edges[upstream, name]["lag_days"])
            for upstream in self.graph.predecessors(name)
        ]

    def topological_order(self) -> list[str]:
        """Stations ordered so every upstream precedes its downstream."""
        return list(nx.topological_sort(self.graph))

    def outlet(self) -> str:
        """The unique most-downstream station."""
        sinks = [name for name in self.graph.nodes if self.graph.out_degree(name) == 0]
        if len(sinks) != 1:
            raise NetworkError(f"expected one outlet, found {sinks}")
        return sinks[0]

    def validate(self) -> None:
        """Check Appendix A invariants.

        Every virtual station must merge at least two water bodies; every
        non-headwater station must have an upstream; the graph must be a
        DAG with a single outlet.
        """
        if not nx.is_directed_acyclic_graph(self.graph):
            raise NetworkError("river network must be acyclic")
        self.outlet()
        for station in self.stations():
            in_degree = self.graph.in_degree(station.name)
            if station.is_virtual and in_degree < 2:
                raise NetworkError(
                    f"virtual station {station.name} merges {in_degree} < 2 bodies"
                )
            if station.headwater and in_degree != 0:
                raise NetworkError(
                    f"headwater {station.name} has upstream stations"
                )
            if not station.headwater and in_degree == 0:
                raise NetworkError(
                    f"station {station.name} has no upstream and is not a headwater"
                )


#: Paper Figure 8 distances, in km.
NAKDONG_SEGMENTS_KM = {
    ("S6", "VS3"): 1.0,  # S6 to the S6*T3 confluence (upstream of S5)
    ("T3", "VS3"): 3.0,  # "T3 (To joint: 3 km)"
    ("VS3", "S5"): 26.5,  # remainder of the 27.5 km S6-S5 reach
    ("S5", "VS2"): 34.9,  # S5 towards the S4*T2 confluence
    ("T2", "VS2"): 7.1,  # "T2 (To joint: 7.1 km)"
    ("VS2", "S4"): 7.1,  # remainder of the 42 km S5-S4 reach
    ("S4", "VS1"): 23.0,  # S4 towards the S3*T1 confluence
    ("T1", "VS1"): 5.5,  # "T1 (To joint: 5.5 km)"
    ("VS1", "S3"): 5.5,  # remainder of the 28.5 km S4-S3 reach
    ("S3", "S2"): 22.3,
    ("S2", "S1"): 32.8,
}


def nakdong_network(flow_velocity_km_per_day: float = 25.0) -> RiverNetwork:
    """Build the Nakdong study-site network (Figure 8 + Appendix A).

    Six main-channel stations (S1-S6), three tributaries (T1-T3), and
    three virtual stations at the confluences S6*T3 (VS3), S4*T2 (VS2)
    and S3*T1 (VS1).
    """
    network = RiverNetwork(flow_velocity_km_per_day=flow_velocity_km_per_day)
    for name in ("S6", "T3", "T2", "T1"):
        network.add_station(Station(name, retention=0.12, headwater=True))
    for name in ("S5", "S4", "S3", "S2", "S1"):
        network.add_station(Station(name, retention=0.12))
    for name in ("VS3", "VS2", "VS1"):
        network.add_station(Station(name, is_virtual=True, retention=0.0))
    for (upstream, downstream), distance in NAKDONG_SEGMENTS_KM.items():
        network.add_segment(upstream, downstream, distance)
    network.validate()
    return network
