"""River-system simulation: biology advected through the flow network.

Appendix A of the paper describes the coupling that this module
implements: the *hydrological process* (known, static) moves water bodies
between stations, and the *biological process* (the model under revision)
updates plankton inside each water body.  Each day, the state at a
non-headwater station is a mass-balance blend (equation (9)) of

* the locally retained water, advanced one day by the biological model;
* water arriving from upstream stations (lagged by segment travel time),
  carrying the upstream plankton state;
* rainfall runoff, which carries no plankton (dilution).

Headwater stations are boundary conditions: their plankton series come
from observations.  Because every simulated parcel is anchored to an
upstream observation a few days back, candidate models are judged on how
well they evolve plankton over the true residence time of the river --
not on decade-long free-running stability.

The mixing schedule (who arrives where, when, with what weight) is
*model-independent*: it is precomputed once from the flow series and
reused for every candidate evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.dynamics.drivers import DriverTable
from repro.dynamics.integrate import ClampSpec, SimulationDiverged
from repro.dynamics.system import ProcessModel
from repro.river.network import RiverNetwork


class RiverSimulationError(ValueError):
    """Raised for inconsistent river-simulation inputs."""


@dataclass(frozen=True)
class UpstreamSource:
    """One effective upstream contribution to a station.

    Virtual (confluence) stations are collapsed: a source is always a
    measuring station, with the total lag accumulated along the path.
    """

    station: str
    lag_days: int


@dataclass
class MixingSchedule:
    """Precomputed daily mass-balance weights for one station.

    For station B on day t, the new state is::

        state_B(t+1) = retained_frac[t] * bio_step(state_B(t))
                     + sum_k source_frac[k][t] * state_{src_k}(t - lag_k)
                     + runoff_frac[t] * 0        (plankton-free rain water)

    The fractions sum to one; they follow from equation (9)'s flow mass
    balance, so high-flow (monsoon) days replace the local water faster.
    """

    station: str
    sources: list[UpstreamSource]
    retained_frac: np.ndarray
    source_frac: list[np.ndarray]
    runoff_frac: np.ndarray

    def validate(self) -> None:
        """Mass balance: retained + source + runoff fractions sum to one.

        Delegates to the lint pass's S005 check so a failure names the
        station, the worst day's total, and how many days are off.
        """
        from repro.lint.system_rules import check_mixing_fractions

        total = self.retained_frac + self.runoff_frac
        for frac in self.source_frac:
            total = total + frac
        findings = check_mixing_fractions(self.station, total)
        if findings:
            raise RiverSimulationError(
                "; ".join(finding.format() for finding in findings)
            )


def collapse_upstream(
    network: RiverNetwork, station: str
) -> list[UpstreamSource]:
    """Effective measuring-station sources of ``station``.

    Walks through virtual stations, accumulating segment lags, and returns
    one :class:`UpstreamSource` per contributing measuring station.
    """
    sources: list[UpstreamSource] = []

    def walk(name: str, lag: int) -> None:
        for upstream, segment_lag in network.upstream_of(name):
            total = lag + segment_lag
            if network.station(upstream).is_virtual:
                walk(upstream, total)
            else:
                sources.append(UpstreamSource(upstream, total))

    walk(station, 0)
    return sources


def build_mixing_schedules(
    network: RiverNetwork,
    flows: Mapping[str, np.ndarray],
    runoff: Mapping[str, np.ndarray],
) -> dict[str, MixingSchedule]:
    """Precompute the daily mixing weights for all non-headwater stations.

    Follows equation (9): the water at B on day t+1 is composed of
    ``r_B * F_B(t)`` retained water, the lagged upstream discharges
    ``(1 - r_A) * F_A(t - lag)``, and the local runoff.  Fractions are the
    components normalised by their sum.
    """
    schedules: dict[str, MixingSchedule] = {}
    for name in network.topological_order():
        station = network.station(name)
        if station.is_virtual or station.headwater:
            continue
        sources = collapse_upstream(network, name)
        flow = np.asarray(flows[name], dtype=float)
        horizon = len(flow)
        retained = np.empty(horizon)
        retained[0] = station.retention * flow[0]
        retained[1:] = station.retention * flow[:-1]
        source_parts: list[np.ndarray] = []
        for source in sources:
            source_station = network.station(source.station)
            upstream_flow = np.asarray(flows[source.station], dtype=float)
            passed = (1.0 - source_station.retention) * _delay(
                upstream_flow, source.lag_days
            )
            source_parts.append(passed)
        runoff_part = np.asarray(
            runoff.get(name, np.zeros(horizon)), dtype=float
        )
        total = retained + runoff_part + sum(source_parts)
        total = np.maximum(total, 1e-9)
        schedule = MixingSchedule(
            station=name,
            sources=sources,
            retained_frac=retained / total,
            source_frac=[part / total for part in source_parts],
            runoff_frac=runoff_part / total,
        )
        schedule.validate()
        schedules[name] = schedule
    return schedules


@dataclass
class RiverSystemSimulator:
    """Simulates a biological model across the whole river network.

    Attributes:
        network: The river network (stations, segments, retention).
        schedules: Mixing schedules from :func:`build_mixing_schedules`.
        drivers: Per-station driver tables (identical column order).
        boundary: Per-headwater-station boundary plankton series, keyed by
            station name then state name (e.g. ``{"S6": {"BPhy": ..}}``).
        initial_states: Initial plankton state per non-headwater station.
        clamp: State clamping band applied after every blend.
        dt: Biological step size (days).
    """

    network: RiverNetwork
    schedules: dict[str, MixingSchedule]
    drivers: dict[str, DriverTable]
    boundary: dict[str, dict[str, np.ndarray]]
    initial_states: dict[str, tuple[float, ...]]
    clamp: ClampSpec = field(default_factory=ClampSpec)
    dt: float = 1.0

    def __post_init__(self) -> None:
        self._order = [
            name
            for name in self.network.topological_order()
            if not self.network.station(name).is_virtual
            and not self.network.station(name).headwater
        ]
        horizons: dict[str, int] = {}
        for name, table in self.drivers.items():
            horizons[f"drivers at station {name!r}"] = len(table)
        for station, series_map in self.boundary.items():
            for state, series in series_map.items():
                horizons[f"boundary {state!r} at station {station!r}"] = len(
                    series
                )
        if len(set(horizons.values())) != 1:
            details = ", ".join(
                f"{who}: {days} days" for who, days in sorted(horizons.items())
            )
            raise RiverSimulationError(
                f"driver/boundary horizons differ: {details}"
            )
        self.horizon = next(iter(horizons.values()))

    @property
    def biological_stations(self) -> list[str]:
        """Stations where the biological model runs (non-headwater)."""
        return list(self._order)

    def run(
        self,
        model: ProcessModel,
        params: Sequence[float],
        use_compiled: bool = True,
    ) -> dict[str, np.ndarray]:
        """Simulate and return full per-station state trajectories.

        Returns arrays of shape ``(horizon, n_states)`` per biological
        station.

        Raises:
            SimulationDiverged: If any state becomes NaN.
        """
        trajectories = {
            name: np.empty((self.horizon, len(model.state_names)))
            for name in self._order
        }
        for __ in self.steps(model, params, trajectories, use_compiled):
            pass
        return trajectories

    def steps(
        self,
        model: ProcessModel,
        params: Sequence[float],
        trajectories: dict[str, np.ndarray] | None = None,
        use_compiled: bool = True,
    ) -> Iterator[dict[str, tuple[float, ...]]]:
        """Advance the whole network one day at a time.

        Yields the per-station state after each day; optionally records
        into ``trajectories``.  This is the incremental interface used for
        evaluation short-circuiting.

        The loop body is deliberately written against plain-Python
        pre-bound structures (lists, tuples): it runs once per station per
        day for every fitness evaluation of every individual, so avoiding
        numpy scalar boxing here is a several-fold end-to-end speedup.
        """
        n_states = len(model.state_names)
        step = model.compiled() if use_compiled else model.interpret_step
        params = tuple(params)
        dt = self.dt
        clamp_min, clamp_max = self.clamp.minimum, self.clamp.maximum
        history: dict[str, list[tuple[float, ...]]] = {}
        for name in self._order:
            initial = tuple(float(v) for v in self.initial_states[name])
            if len(initial) != n_states:
                raise RiverSimulationError(
                    f"initial state at station {name!r} has {len(initial)} "
                    f"entries for {n_states} state(s) "
                    f"{list(model.state_names)}"
                )
            history[name] = [initial]

        # Pre-bind everything the inner loop touches.
        plan = []
        for name in self._order:
            schedule = self.schedules[name]
            sources = []
            for k, source in enumerate(schedule.sources):
                frac = schedule.source_frac[k].tolist()
                if source.station in self.boundary:
                    series_map = self.boundary[source.station]
                    columns = tuple(
                        np.asarray(series_map[state], dtype=float).tolist()
                        for state in model.state_names
                    )
                    sources.append((frac, source.lag_days, columns, None))
                else:
                    sources.append(
                        (frac, source.lag_days, None, history[source.station])
                    )
            plan.append(
                (
                    name,
                    self.drivers[name].rows(),
                    schedule.retained_frac.tolist(),
                    sources,
                    history[name],
                )
            )

        state_range = range(n_states)
        for t in range(self.horizon):
            snapshot: dict[str, tuple[float, ...]] = {}
            for name, rows, retained, sources, own_history in plan:
                current = own_history[t]
                derivatives = step(params, rows[t], current)
                r = retained[t]
                blended = [
                    r * (current[s] + dt * derivatives[s]) for s in state_range
                ]
                for frac, lag, columns, upstream_history in sources:
                    f = frac[t]
                    origin = t - lag
                    if origin < 0:
                        origin = 0
                    if columns is None:
                        upstream = upstream_history[origin + 1]
                        for s in state_range:
                            blended[s] += f * upstream[s]
                    else:
                        for s in state_range:
                            blended[s] += f * columns[s][origin]
                # Runoff fraction contributes zero plankton.
                for s in state_range:
                    value = blended[s]
                    if value != value:  # NaN
                        raise SimulationDiverged(
                            f"state {model.state_names[s]} at {name} is NaN"
                        )
                    if value < clamp_min:
                        blended[s] = clamp_min
                    elif value > clamp_max:
                        blended[s] = clamp_max
                new_state = tuple(blended)
                own_history.append(new_state)
                snapshot[name] = new_state
                if trajectories is not None:
                    trajectories[name][t] = new_state
            yield snapshot


@dataclass
class RiverTask:
    """Fit the biological process to observations at a target station.

    Duck-type compatible with :class:`repro.dynamics.task.ModelingTask`
    (``state_names``, ``var_order``, ``n_cases``, ``error_stream``,
    ``rmse``, ``mae``, ``trajectory``), so it plugs into the GMR fitness
    evaluator and all calibration baselines unchanged.
    """

    simulator: RiverSystemSimulator
    observed: np.ndarray
    target_station: str
    target_state: str
    state_names: tuple[str, ...]
    var_order: tuple[str, ...]

    def __post_init__(self) -> None:
        self.observed = np.asarray(self.observed, dtype=float)
        if len(self.observed) != self.simulator.horizon:
            raise RiverSimulationError(
                f"{len(self.observed)} observations for horizon "
                f"{self.simulator.horizon}"
            )
        if self.target_station not in self.simulator.biological_stations:
            raise RiverSimulationError(
                f"target {self.target_station!r} is not a simulated station"
            )
        self._target_index = self.state_names.index(self.target_state)

    @property
    def n_cases(self) -> int:
        return self.simulator.horizon

    def error_stream(
        self,
        model: ProcessModel,
        params: Sequence[float],
        use_compiled: bool = True,
    ) -> Iterator[float]:
        """Per-day squared error at the target station (for Algorithm 1)."""
        index = self._target_index
        for t, snapshot in enumerate(
            self.simulator.steps(model, params, use_compiled=use_compiled)
        ):
            predicted = snapshot[self.target_station][index]
            if not math.isfinite(predicted):
                raise SimulationDiverged("prediction is not finite")
            error = predicted - self.observed[t]
            yield error * error

    def rmse(
        self,
        model: ProcessModel,
        params: Sequence[float],
        use_compiled: bool = True,
    ) -> float:
        from repro.dynamics.task import BAD_FITNESS

        total = 0.0
        count = 0
        try:
            for squared_error in self.error_stream(model, params, use_compiled):
                total += squared_error
                count += 1
        except (SimulationDiverged, OverflowError):
            return BAD_FITNESS
        if count == 0 or not math.isfinite(total):
            return BAD_FITNESS
        return math.sqrt(total / count)

    def mae(self, model: ProcessModel, params: Sequence[float]) -> float:
        from repro.dynamics.task import BAD_FITNESS

        series = self.trajectory(model, params)
        if series is None:
            return BAD_FITNESS
        return float(np.mean(np.abs(series - self.observed)))

    def trajectory(
        self, model: ProcessModel, params: Sequence[float]
    ) -> np.ndarray | None:
        """The predicted target series; None on divergence."""
        try:
            trajectories = self.simulator.run(model, params)
        except (SimulationDiverged, OverflowError):
            return None
        series = trajectories[self.target_station][:, self._target_index]
        if not np.all(np.isfinite(series)):
            return None
        return series


def _delay(series: np.ndarray, lag: int) -> np.ndarray:
    """Shift a series forward in time by ``lag`` days (edge-padded)."""
    if lag <= 0:
        return series.copy()
    delayed = np.empty_like(series)
    delayed[:lag] = series[0]
    delayed[lag:] = series[:-lag]
    return delayed
