"""Constant and variable parameters of the river process (Tables III, IV).

Constant parameters (``C``-prefixed) represent physiological rates; their
priors -- expected value plus exploration bounds -- are prior knowledge
driving Gaussian mutation.  Variable parameters (``V``-prefixed) are
external conditions imported from observed data at each evaluation time.
"""

from __future__ import annotations

from repro.gp.knowledge import ParameterPrior

#: Table III: constant parameters updated via Gaussian mutation.
CONSTANT_PRIORS: dict[str, ParameterPrior] = {
    prior.name: prior
    for prior in (
        ParameterPrior(
            "CUA", 1.89, 0.1, 4.0, "day^-1", "Max growth rate of phytoplankton"
        ),
        ParameterPrior(
            "CUZ", 0.15, 0.0, 0.3, "day^-1", "Max growth rate of zooplankton"
        ),
        ParameterPrior(
            "CBRA", 0.021, 0.0, 0.17, "day^-1", "Breath rate of phytoplankton"
        ),
        ParameterPrior(
            "CBRZ", 0.05, 0.0, 0.2, "day^-1", "Breath rate of zooplankton"
        ),
        ParameterPrior(
            "CMFR", 0.19, 0.01, 0.8, "day^-1", "Maximum feeding rate"
        ),
        ParameterPrior(
            "CDZ", 0.04, 0.01, 0.1, "day^-1", "Death rate of zooplankton"
        ),
        ParameterPrior(
            "CFS", 5.0, 4.0, 6.0, "ug L^-1", "Half-saturation constant of food"
        ),
        ParameterPrior(
            "CBTP1", 27.0, 20.0, 34.0, "degC", "Blue-green optimal temperature"
        ),
        ParameterPrior(
            "CBTP2", 5.0, 1.0, 20.0, "degC", "Diatom optimal temperature"
        ),
        ParameterPrior(
            "CFmin", 1.0, 0.1, 1.9, "ug L^-1", "Minimum food concentration"
        ),
        ParameterPrior(
            "CBL", 26.78, 24.0, 30.0, "MJ m^-2 d^-1", "Best light for phytoplankton"
        ),
        ParameterPrior(
            "CN", 0.0351, 0.02, 0.05, "mg L^-1", "Half-saturation constant of nitrogen"
        ),
        ParameterPrior(
            "CP",
            0.00167,
            0.001,
            0.02,
            "mg L^-1",
            "Half-saturation constant of phosphorus",
        ),
        ParameterPrior(
            "CSI", 0.00467, 0.001, 0.2, "mg L^-1", "Half-saturation constant of silica"
        ),
        ParameterPrior(
            "CBMT", 0.04, 0.01, 0.07, "", "Breath multiplier on grazing"
        ),
        ParameterPrior(
            "CPT",
            0.005,
            0.003,
            0.2,
            "degC^-2",
            "Temperature coefficient for phytoplankton growth",
        ),
    )
}

#: Table IV: temporal variable parameters, in the canonical driver order
#: used by every river driver table in this package.
TEMPORAL_VARIABLES: dict[str, str] = {
    "Vlgt": "Irradiance (light intensity)",
    "Vn": "Nitrogen concentration",
    "Vp": "Phosphorus concentration",
    "Vsi": "Silica concentration",
    "Vtmp": "Water temperature",
    "Vdo": "Dissolved oxygen",
    "Vcd": "Electric conductivity",
    "Vph": "pH",
    "Valk": "Alkalinity",
    "Vsd": "Water transparency",
}

#: The canonical driver-column order for river tasks.
VARIABLE_ORDER: tuple[str, ...] = tuple(TEMPORAL_VARIABLES)

#: The biological state variables, in equation order.
STATE_NAMES: tuple[str, ...] = ("BPhy", "BZoo")


def initial_constants() -> dict[str, float]:
    """Constant parameters at their Table III expected values."""
    return {name: prior.mean for name, prior in CONSTANT_PRIORS.items()}
