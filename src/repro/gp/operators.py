"""Genetic operators on derivation-tree individuals (Section III-B2).

Crossover and subtree mutation act on the derivation tree; Gaussian
mutation acts on the constant parameters (expert parameters, constrained by
their Table III priors, and ``R`` constants carried inside lexemes).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.gp.config import GMRConfig
from repro.gp.individual import Individual
from repro.gp.knowledge import PriorKnowledge
from repro.tag.derivation import DerivationNode, DerivationTree
from repro.tag.grammar import TagGrammar
from repro.tag.trees import Address


def _non_root_nodes(
    derivation: DerivationTree,
) -> list[tuple[DerivationNode, Address, DerivationNode]]:
    """All ``(parent, address, node)`` triples excluding the root."""
    return [
        (parent, address, node)
        for parent, address, node in derivation.walk_with_parents()
        if parent is not None
    ]


def crossover(
    left: Individual,
    right: Individual,
    grammar: TagGrammar,
    config: GMRConfig,
    rng: random.Random,
) -> tuple[Individual, Individual] | None:
    """Swap compatible random subtrees between two individuals.

    Subtrees are compatible when each can adjoin at the address the other
    is attached to; with matched root/foot labels this reduces to equal
    beta-tree root symbols.  The swap is retried up to
    ``config.crossover_retries`` times (the paper's retry limit) and must
    keep both children within the chromosome size bounds.  Returns None if
    no compatible pair is found.
    """
    child_a = left.copy()
    child_b = right.copy()
    nodes_a = _non_root_nodes(child_a.derivation)
    nodes_b = _non_root_nodes(child_b.derivation)
    if not nodes_a or not nodes_b:
        return None
    for __ in range(max(1, config.crossover_retries)):
        parent_a, address_a, node_a = rng.choice(nodes_a)
        parent_b, address_b, node_b = rng.choice(nodes_b)
        if node_a.tree.root.symbol != node_b.tree.root.symbol:
            continue
        size_a = child_a.size - node_a.size + node_b.size
        size_b = child_b.size - node_b.size + node_a.size
        if not (config.min_size <= size_a <= config.max_size):
            continue
        if not (config.min_size <= size_b <= config.max_size):
            continue
        parent_a.children[address_a] = node_b
        parent_b.children[address_b] = node_a
        child_a.invalidate()
        child_b.invalidate()
        return child_a, child_b
    return None


def subtree_mutation(
    individual: Individual,
    grammar: TagGrammar,
    config: GMRConfig,
    rng: random.Random,
    size_slack: int = 2,
) -> Individual | None:
    """Replace a random subtree with a fresh one of similar size.

    The new subtree is grown at the same attachment address from a
    compatible beta-tree, targeting the removed subtree's size within
    ``size_slack`` (the paper's "similar size to x").  Returns None when
    the individual has no removable subtree.
    """
    from repro.gp.init import attach, grow_node  # local import: cycle

    child = individual.copy()
    nodes = _non_root_nodes(child.derivation)
    if not nodes:
        return None
    parent, address, node = rng.choice(nodes)
    old_size = node.size
    symbol = parent.tree.node_at(address).symbol
    candidates = grammar.betas_for(symbol)
    if not candidates:
        return None
    del parent.children[address]
    beta = rng.choice(candidates)
    new_node = attach(grammar, parent, address, beta, rng)
    target = max(1, old_size + rng.randint(-size_slack, size_slack))
    # Cap the replacement so the whole individual stays within MAXSIZE.
    headroom = config.max_size - (child.size - new_node.size)
    grow_node(grammar, new_node, min(target, headroom), rng)
    child.invalidate()
    return child


def gaussian_mutation(
    individual: Individual,
    knowledge: PriorKnowledge,
    config: GMRConfig,
    rng: random.Random,
    sigma_scale: float = 1.0,
) -> Individual:
    """Tune all constant parameters by truncated Gaussian steps.

    Per Section III-B3: each parameter's proposal is centred on its current
    value (the new value becomes the new mean), the standard deviation is
    ``gaussian_sigma_factor`` times the prior mean's magnitude, scaled by
    ``sigma_scale`` (the linear ramp-down in the final generations), and
    out-of-range samples are clipped to the boundary.
    """
    child = individual.copy()
    factor = config.gaussian_sigma_factor * sigma_scale
    for name, prior in knowledge.priors.items():
        current = child.params.get(name, prior.mean)
        sigma = factor * max(abs(prior.mean), 1e-12)
        child.params[name] = prior.clip(rng.gauss(current, sigma))
    low, high = knowledge.rconst_bounds
    for rconst in child.derivation.rconsts():
        # Random constants start in [0, 1] (Table II) but the revisions the
        # paper reports contain values far outside it (e.g. 253.4 in its
        # eq. (7)), so their mutation keeps a unit sigma floor: the walk can
        # escape the unit interval instead of stalling at sigma ~ |value|.
        if rconst.sigma_hint is not None:
            sigma = factor * rconst.sigma_hint
        else:
            sigma = factor * max(abs(rconst.value), abs(rconst.mean), 1.0)
        value = rng.gauss(rconst.value, sigma)
        rconst.value = min(max(value, low), high)
    child.invalidate()
    return child


def gaussian_mutation_best_of(
    individual: Individual,
    knowledge: PriorKnowledge,
    config: GMRConfig,
    rng: random.Random,
    sigma_scale: float,
    batch_fitness_fn: "Callable[[list[Individual]], list[float]]",
) -> Individual:
    """Propose ``config.gaussian_proposals`` Gaussian tweaks, keep the best.

    The propose-K-then-pick-best pattern: every proposal shares the
    parent's structure, so scoring them through the evaluator's batched
    kernel integrates all K parameter vectors in one vectorised pass.
    Proposals are drawn (and so consume the RNG stream) in order; ties on
    fitness keep the earliest proposal.  With ``gaussian_proposals=1``
    this is a single :func:`gaussian_mutation` followed by one
    evaluation -- the engine's historical behaviour.

    Returns the chosen proposal with its fitness already set.
    """
    proposals = [
        gaussian_mutation(individual, knowledge, config, rng, sigma_scale)
        for _ in range(config.gaussian_proposals)
    ]
    fitnesses = batch_fitness_fn(proposals)
    best_index = min(range(len(proposals)), key=fitnesses.__getitem__)
    return proposals[best_index]


def replication(individual: Individual) -> Individual:
    """Copy an individual unchanged (the replication operator)."""
    child = individual.copy()
    child.fitness = individual.fitness
    child.fully_evaluated = individual.fully_evaluated
    return child
