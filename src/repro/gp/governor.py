"""Resource governance for GMR runs (operability, tier 4).

A long evolutionary campaign must be *boundable* (stop cleanly when a
wall-clock, evaluation, or generation budget runs out), *interruptible*
(finish the in-flight generation on SIGTERM/SIGINT instead of losing
work since the last snapshot), and *observable while idle-looking*
(periodic heartbeats so a stalled campaign is distinguishable from a
slow one).  This module supplies all three as one engine attachment:

* :class:`CampaignBudget` -- declarative resource ceilings, consulted at
  generation boundaries only.  Stop points are therefore deterministic
  decision points: a budget stop leaves exactly the state a cadence
  checkpoint at that generation would, so resuming the stopped run with
  a larger budget continues bit-identically with the uninterrupted run.
* :class:`RunGovernor` -- the per-engine policy object.  It owns the
  budget, the cooperative stop flag that signal handlers set, and the
  heartbeat cadence.  The governor never reads the clock itself: the
  engine passes its own elapsed time in, so this module stays free of
  wall-clock reads (the determinism sanitizer's C002 rule) and the
  budget arithmetic is pure.

Stop reasons are short machine-readable strings (``budget:generations``,
``signal:SIGTERM``) stamped into the trace (``run_stop`` events), the
final checkpoint envelope, and the partial-but-valid
:class:`~repro.gp.engine.RunResult` / :class:`~repro.gp.resilience.
CampaignResult`.
"""

from __future__ import annotations

import signal
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Tracer


class GovernorConfigError(ValueError):
    """Raised for inconsistent budget/governor configurations."""


#: Canonical stop reasons for budget-bounded stops.  Signal stops use
#: ``signal:<NAME>`` (e.g. ``signal:SIGTERM``).
STOP_WALL_CLOCK = "budget:wall_clock"
STOP_EVALUATIONS = "budget:evaluations"
STOP_GENERATIONS = "budget:generations"


@dataclass(frozen=True)
class CampaignBudget:
    """Resource ceilings for one run, checked at generation boundaries.

    Attributes:
        max_wall_clock: Stop once the run's elapsed wall-clock (summed
            across resumed segments, like ``RunCheckpoint.elapsed``)
            reaches this many seconds, or None for unlimited.
        max_evaluations: Stop once the evaluator has performed this many
            fitness evaluations, or None.
        max_generations: Stop once this many generations have completed
            (generation 0, the seed cohort, counts), or None.

    All ceilings are inclusive *floors for stopping*: the generation
    during which a ceiling is crossed still completes -- budgets never
    interrupt work mid-generation, which is what keeps stop points
    deterministic and resumable.
    """

    max_wall_clock: float | None = None
    max_evaluations: int | None = None
    max_generations: int | None = None

    def __post_init__(self) -> None:
        if self.max_wall_clock is not None and self.max_wall_clock <= 0:
            raise GovernorConfigError("max_wall_clock must be positive or None")
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise GovernorConfigError("max_evaluations must be >= 1 or None")
        if self.max_generations is not None and self.max_generations < 0:
            raise GovernorConfigError("max_generations must be >= 0 or None")

    @property
    def unlimited(self) -> bool:
        return (
            self.max_wall_clock is None
            and self.max_evaluations is None
            and self.max_generations is None
        )

    def to_json(self) -> dict:
        """JSON-serialisable form (None ceilings are omitted).

        The serve layer stamps this into job specs, so a job's budget
        participates in its content-addressed id and survives server
        restarts alongside the rest of the spec.
        """
        payload: dict = {}
        if self.max_wall_clock is not None:
            payload["max_wall_clock"] = self.max_wall_clock
        if self.max_evaluations is not None:
            payload["max_evaluations"] = self.max_evaluations
        if self.max_generations is not None:
            payload["max_generations"] = self.max_generations
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "CampaignBudget":
        """Inverse of :meth:`to_json`; unknown keys fail loudly."""
        known = ("max_wall_clock", "max_evaluations", "max_generations")
        unknown = sorted(key for key in payload if key not in known)
        if unknown:
            raise GovernorConfigError(
                f"unknown budget field(s) {unknown}; known: {list(known)}"
            )
        return cls(**payload)

    def exceeded(
        self, *, generation: int, evaluations: int, elapsed: float
    ) -> str | None:
        """The stop reason this state triggers, or None while in budget.

        Deterministic ceilings (generations, evaluations) are consulted
        before the wall clock, so two hosts crossing several ceilings in
        the same generation report the same reason.
        """
        if (
            self.max_generations is not None
            and generation >= self.max_generations
        ):
            return STOP_GENERATIONS
        if (
            self.max_evaluations is not None
            and evaluations >= self.max_evaluations
        ):
            return STOP_EVALUATIONS
        if (
            self.max_wall_clock is not None
            and elapsed >= self.max_wall_clock
        ):
            return STOP_WALL_CLOCK
        return None


#: Signals the governor turns into cooperative stops.
_GOVERNED_SIGNALS = ("SIGTERM", "SIGINT")


@dataclass
class RunGovernor:
    """Budgets, cooperative shutdown, and heartbeats for one engine.

    Attach as ``engine.governor``; :meth:`~repro.gp.engine.GMREngine.run`
    then consults :meth:`check` after every completed generation and
    stops cleanly (final checkpoint, ``run_stop`` trace event, partial
    ``RunResult``) when a reason comes back.

    Attributes:
        budget: Resource ceilings, or None for signal handling only.
        handle_signals: Install SIGTERM/SIGINT handlers for the duration
            of a run (:meth:`install`); the handler sets the stop flag
            and the engine finishes the in-flight generation before
            checkpointing and returning.  Off by default so library use
            never hijacks the host application's handlers; the signal
            context restores the previous handlers on exit either way.
        heartbeat_every: Emit a ``heartbeat`` trace event every this
            many generations (0 disables heartbeats).

    The stop flag is runtime state: it is deliberately dropped when the
    governor is pickled (e.g. inside an engine shipped to a pool
    worker), so a parent's pending stop never leaks into a fresh
    process, and it survives *within* a process across runs -- a signal
    received between campaign runs still stops the next one before it
    wastes a generation.
    """

    budget: CampaignBudget | None = None
    handle_signals: bool = False
    heartbeat_every: int = 1
    _stop_reason: str | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.heartbeat_every < 0:
            raise GovernorConfigError("heartbeat_every must be >= 0")
        if self.budget is not None and self.budget.unlimited:
            self.budget = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_stop_reason"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_stop_reason", None)

    @property
    def stop_requested(self) -> str | None:
        """The pending cooperative stop reason, if any."""
        return self._stop_reason

    def request_stop(self, reason: str) -> None:
        """Set the cooperative stop flag (first reason wins)."""
        if self._stop_reason is None:
            self._stop_reason = reason

    def reset(self) -> None:
        """Clear the cooperative stop flag (e.g. before a fresh run)."""
        self._stop_reason = None

    def check(
        self, *, generation: int, evaluations: int, elapsed: float
    ) -> str | None:
        """Stop reason at this generation boundary, or None to go on.

        A pending cooperative stop (signal) wins over budget ceilings,
        so the reported reason names what actually ended the run.
        """
        if self._stop_reason is not None:
            return self._stop_reason
        if self.budget is not None:
            return self.budget.exceeded(
                generation=generation,
                evaluations=evaluations,
                elapsed=elapsed,
            )
        return None

    def heartbeat(
        self,
        tracer: "Tracer | None",
        *,
        generation: int,
        evaluations: int,
        elapsed: float,
    ) -> None:
        """Emit one ``heartbeat`` event if the cadence says so."""
        if (
            tracer is None
            or self.heartbeat_every <= 0
            or generation % self.heartbeat_every != 0
        ):
            return
        tracer.point(
            "heartbeat",
            generation=generation,
            evaluations=evaluations,
            elapsed=elapsed,
        )

    @contextmanager
    def install(self) -> Iterator["RunGovernor"]:
        """Install cooperative SIGTERM/SIGINT handlers for a run.

        The handlers only set the stop flag -- no exception is raised
        into the engine loop, so the in-flight generation completes and
        the normal stop path (final checkpoint, ``run_stop`` event,
        partial result) runs.  Previous handlers are restored on exit.
        A no-op when ``handle_signals`` is off or when called outside
        the main thread (``signal.signal`` raises there; worker
        processes keep their pool semantics).
        """
        if not self.handle_signals:
            yield self
            return

        def _handler(signum: int, frame: object) -> None:
            self.request_stop(f"signal:{signal.Signals(signum).name}")

        previous: dict[int, object] = {}
        for name in _GOVERNED_SIGNALS:
            signum = getattr(signal, name, None)
            if signum is None:  # pragma: no cover - platform-specific
                continue
            try:
                previous[signum] = signal.signal(signum, _handler)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                continue
        try:
            yield self
        finally:
            for signum, handler in previous.items():
                try:
                    signal.signal(signum, handler)  # type: ignore[arg-type]
                except (ValueError, OSError):  # pragma: no cover
                    pass
