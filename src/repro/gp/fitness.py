"""Fitness evaluation with evaluation short-circuiting (Algorithm 1).

The evaluator combines the three speedup techniques of Section III-D, each
independently switchable for the Figure 10 ablation:

* **Tree caching (TC)** -- fitness results are cached on the canonical
  simplified structure plus parameter values (:mod:`repro.gp.cache`).
* **Evaluation short-circuiting (ES)** -- Algorithm 1: evaluation over the
  fitness cases is stopped as soon as the extrapolated fitness cannot beat
  the best previously *fully evaluated* fitness, controlled by the
  ``threshold`` eagerness parameter.
* **Runtime compilation (RC)** -- models are evaluated through compiled
  step functions rather than the tree-walking interpreter
  (:mod:`repro.expr.compile`); compiled functions are shared between
  structurally identical individuals.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.dynamics.integrate import SimulationDiverged
from repro.dynamics.task import BAD_FITNESS, ModelingTask
from repro.expr.compile import CompiledModel
from repro.gp.cache import TreeCache
from repro.gp.config import GMRConfig
from repro.gp.individual import Individual

#: Extrapolates a final fitness from a partial one:
#: ``extrapolate(partial_fitness, cases_done, total_cases)``.
ExtrapolationFn = Callable[[float, int, int], float]


def linear_extrapolation(fitness: float, cases_done: int, total_cases: int) -> float:
    """Linear extrapolation of the accumulated squared error.

    With RMSE as fitness, scaling the partial SSE linearly to the full
    horizon leaves the RMSE unchanged, so the partial RMSE *is* the linear
    estimate of the final fitness.
    """
    return fitness


def pessimistic_extrapolation(
    fitness: float, cases_done: int, total_cases: int
) -> float:
    """Assume the per-case error keeps growing at the observed rate.

    A stricter alternative extrapolation: errors of dynamic models tend to
    accumulate, so weight the partial RMSE up by the remaining fraction.
    """
    if cases_done <= 0:
        return fitness
    remaining = (total_cases - cases_done) / total_cases
    return fitness * (1.0 + 0.5 * remaining)


@dataclass
class EvaluationStats:
    """Bookkeeping across all evaluations performed by an evaluator."""

    evaluations: int = 0
    cache_hits: int = 0
    short_circuits: int = 0
    full_evaluations: int = 0
    divergences: int = 0
    steps_evaluated: int = 0
    steps_possible: int = 0
    wall_time: float = 0.0

    @property
    def mean_time_per_individual(self) -> float:
        if self.evaluations == 0:
            return 0.0
        return self.wall_time / self.evaluations

    @property
    def step_fraction(self) -> float:
        """Fraction of fitness cases actually evaluated."""
        if self.steps_possible == 0:
            return 0.0
        return self.steps_evaluated / self.steps_possible

    def merge(self, other: "EvaluationStats") -> "EvaluationStats":
        """Counter-wise sum with ``other``.

        Used by the parallel execution layer to fan per-worker statistics
        back into one aggregate; wall times add up to total CPU seconds
        spent evaluating, not elapsed wall-clock.
        """
        return EvaluationStats(
            evaluations=self.evaluations + other.evaluations,
            cache_hits=self.cache_hits + other.cache_hits,
            short_circuits=self.short_circuits + other.short_circuits,
            full_evaluations=self.full_evaluations + other.full_evaluations,
            divergences=self.divergences + other.divergences,
            steps_evaluated=self.steps_evaluated + other.steps_evaluated,
            steps_possible=self.steps_possible + other.steps_possible,
            wall_time=self.wall_time + other.wall_time,
        )

    @classmethod
    def merge_all(cls, parts: "Iterable[EvaluationStats]") -> "EvaluationStats":
        """Merge any number of per-worker statistics."""
        total = cls()
        for part in parts:
            total = total.merge(part)
        return total


@dataclass
class GMRFitnessEvaluator:
    """Evaluates individuals on a modeling task with TC/ES/RC switches.

    Attributes:
        task: The modeling task (drivers, observations, target state).
        config: Engine configuration supplying the TC/ES/RC switches.
        extrapolate: Extrapolation used by short-circuiting.
    """

    task: ModelingTask
    config: GMRConfig
    extrapolate: ExtrapolationFn = linear_extrapolation
    stats: EvaluationStats = field(default_factory=EvaluationStats)

    def __post_init__(self) -> None:
        self._cache = TreeCache()
        self._compiled: dict[tuple, CompiledModel] = {}
        #: Best fitness seen among *full* evaluations (Algorithm 1's
        #: ``bestPrevFull``).
        self.best_prev_full: float = math.inf

    @property
    def cache(self) -> TreeCache:
        return self._cache

    def reset(self) -> None:
        """Clear caches and the best-previous-full marker (new run)."""
        self._cache.clear()
        self._compiled.clear()
        self.best_prev_full = math.inf
        self.stats = EvaluationStats()

    def __call__(self, individual: Individual) -> float:
        return self.evaluate(individual)

    def evaluate(self, individual: Individual) -> float:
        """Evaluate one individual, honouring the configured speedups.

        Sets ``individual.fitness`` and ``individual.fully_evaluated``.
        """
        started = time.perf_counter()
        fitness, fully = self._evaluate_inner(individual)
        individual.fitness = fitness
        individual.fully_evaluated = fully
        self.stats.evaluations += 1
        self.stats.wall_time += time.perf_counter() - started
        return fitness

    def __getstate__(self) -> dict:
        # Compiled step functions are exec-generated and unpicklable; the
        # share table is rebuilt on demand in the receiving process.
        state = dict(self.__dict__)
        state["_compiled"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def _evaluate_inner(self, individual: Individual) -> tuple[float, bool]:
        config = self.config
        model, params = individual.phenotype(
            self.task.state_names, self.task.var_order
        )
        structure_key = model.structure_key()
        total_cases = self.task.n_cases

        cache_key = None
        if config.use_tree_cache:
            cache_key = TreeCache.make_key(structure_key, params)
            cached = self._cache.get(cache_key)
            if cached is not None:
                # A hit still counts its would-be fitness cases as possible
                # (with zero evaluated), so ``step_fraction`` credits tree
                # caching with the steps it saved and the invariant
                # ``steps_evaluated <= steps_possible`` holds on every path.
                self.stats.cache_hits += 1
                self.stats.steps_possible += total_cases
                return cached, True

        if config.use_compilation:
            # Sharing must key on the parameter order too: simplification can
            # collapse structurally different models (with different raw
            # parameter vectors) onto one canonical key, but a compiled step
            # function indexes parameters positionally.
            share_key = (structure_key, model.param_order)
            shared = self._compiled.get(share_key)
            if shared is not None:
                model._compiled = shared
            else:
                self._compiled[share_key] = model.compiled()

        self.stats.steps_possible += total_cases
        threshold = config.es_threshold

        sse = 0.0
        cases_done = 0
        try:
            for squared_error in self.task.error_stream(
                model, params, use_compiled=config.use_compilation
            ):
                sse += squared_error
                cases_done += 1
                if threshold is not None and cases_done < total_cases:
                    fitness = math.sqrt(sse / cases_done)
                    if fitness > self.best_prev_full * threshold:
                        estimate = self.extrapolate(
                            fitness, cases_done, total_cases
                        )
                        if estimate > self.best_prev_full:
                            self.stats.short_circuits += 1
                            self.stats.steps_evaluated += cases_done
                            return estimate, False
        except (SimulationDiverged, OverflowError):
            self.stats.divergences += 1
            self.stats.steps_evaluated += cases_done
            if cache_key is not None:
                self._cache.put(cache_key, BAD_FITNESS)
            return BAD_FITNESS, True

        self.stats.steps_evaluated += cases_done
        if cases_done == 0 or not math.isfinite(sse):
            self.stats.divergences += 1
            return BAD_FITNESS, True
        fitness = math.sqrt(sse / cases_done)
        self.stats.full_evaluations += 1
        if fitness < self.best_prev_full:
            self.best_prev_full = fitness
        if cache_key is not None:
            self._cache.put(cache_key, fitness)
        return fitness, True
