"""Fitness evaluation with evaluation short-circuiting (Algorithm 1).

The evaluator combines the three speedup techniques of Section III-D, each
independently switchable for the Figure 10 ablation:

* **Tree caching (TC)** -- fitness results are cached on the canonical
  simplified structure plus parameter values (:mod:`repro.gp.cache`).
* **Evaluation short-circuiting (ES)** -- Algorithm 1: evaluation over the
  fitness cases is stopped as soon as the extrapolated fitness cannot beat
  the best previously *fully evaluated* fitness, controlled by the
  ``threshold`` eagerness parameter.
* **Runtime compilation (RC)** -- models are evaluated through compiled
  step functions rather than the tree-walking interpreter
  (:mod:`repro.expr.compile`); compiled functions are shared between
  structurally identical individuals.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from repro.dynamics.integrate import (
    SimulationDiverged,
    batched_euler_rollout,
    fused_euler_rollout,
)
from repro.dynamics.system import ProcessModel, compile_cohort
from repro.dynamics.task import BAD_FITNESS, ModelingTask
from repro.expr.compile import (
    CompiledCohortKernel,
    CompiledModel,
    KernelCache,
    KernelCacheStats,
)
from repro.gp.cache import CacheStats, TreeCache
from repro.gp.config import MIN_BATCH_COLUMNS, GMRConfig  # noqa: F401 - re-export
from repro.gp.individual import Individual
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfile
from repro.obs.trace import Tracer

#: Extrapolates a final fitness from a partial one:
#: ``extrapolate(partial_fitness, cases_done, total_cases)``.
ExtrapolationFn = Callable[[float, int, int], float]


def linear_extrapolation(fitness: float, cases_done: int, total_cases: int) -> float:
    """Linear extrapolation of the accumulated squared error.

    With RMSE as fitness, scaling the partial SSE linearly to the full
    horizon leaves the RMSE unchanged, so the partial RMSE *is* the linear
    estimate of the final fitness.
    """
    return fitness


def pessimistic_extrapolation(
    fitness: float, cases_done: int, total_cases: int
) -> float:
    """Assume the per-case error keeps growing at the observed rate.

    A stricter alternative extrapolation: errors of dynamic models tend to
    accumulate, so weight the partial RMSE up by the remaining fraction.
    """
    if cases_done <= 0:
        return fitness
    remaining = (total_cases - cases_done) / total_cases
    return fitness * (1.0 + 0.5 * remaining)


@dataclass
class EvaluationStats:
    """Bookkeeping across all evaluations performed by an evaluator.

    The step counters (``steps_evaluated``/``steps_possible``) account
    fitness cases *algorithmically* -- what the returned result consumed
    under Algorithm 1 -- on both the scalar and the batched path, so ES
    selectivity numbers stay comparable across kernels.  The timing
    fields break the actual compute down by phase: ``compile_time``
    (acquiring compiled kernels, cached or not), ``step_time``
    (integration and error-curve computation, scalar or batched), and
    ``batch_fill`` (phenotype derivation, structure grouping, and
    parameter-matrix stacking while planning a batch).  Phase times come
    from a :class:`~repro.obs.profile.PhaseProfile`, so they are
    mutually disjoint and their sum never exceeds ``wall_time`` -- on
    either path (``tests/gp/test_phase_partition.py``).
    """

    evaluations: int = 0
    cache_hits: int = 0
    short_circuits: int = 0
    full_evaluations: int = 0
    divergences: int = 0
    steps_evaluated: int = 0
    steps_possible: int = 0
    wall_time: float = 0.0
    batched_evaluations: int = 0
    compile_time: float = 0.0
    step_time: float = 0.0
    batch_fill: float = 0.0
    #: Candidates skipped by static triage (``GMRConfig.static_triage``):
    #: proven divergent before compilation, scored BAD_FITNESS without
    #: simulating.  Skips also count as ``divergences``, so divergence
    #: totals stay comparable with triage off.
    triage_skips: int = 0
    #: Exclusive seconds spent in the static-triage analysis phase.
    triage_time: float = 0.0
    #: Structures demoted from the batched kernel to the scalar path
    #: after their batched rollout raised (degradation ladder; see
    #: ``GMRFitnessEvaluator._simulate_group``).
    kernel_fallbacks: int = 0
    #: Process-pool backends that degraded to serial evaluation after
    #: exhausting their rebuild budget (``ProcessPoolBackend``).
    pool_fallbacks: int = 0
    #: Fused multi-structure cohort kernels run to completion
    #: (``GMRFitnessEvaluator._simulate_cohort``).
    fused_cohorts: int = 0
    #: Live parameter columns integrated through fused cohort kernels
    #: (padding lanes excluded).
    fused_columns: int = 0
    #: Cohorts demoted from the fused kernel back to per-structure
    #: batched rollouts after the fused kernel raised (degradation
    #: ladder rung above ``kernel_fallbacks``).
    fusion_fallbacks: int = 0

    def __setstate__(self, state: dict) -> None:
        # Checkpoints written before the static-triage fields pickle
        # without them; heal with the dataclass defaults.
        self.__dict__.update(state)
        self.__dict__.setdefault("triage_skips", 0)
        self.__dict__.setdefault("triage_time", 0.0)
        self.__dict__.setdefault("kernel_fallbacks", 0)
        self.__dict__.setdefault("pool_fallbacks", 0)
        self.__dict__.setdefault("fused_cohorts", 0)
        self.__dict__.setdefault("fused_columns", 0)
        self.__dict__.setdefault("fusion_fallbacks", 0)

    @property
    def mean_time_per_individual(self) -> float:
        if self.evaluations == 0:
            return 0.0
        return self.wall_time / self.evaluations

    @property
    def step_fraction(self) -> float:
        """Fraction of fitness cases actually evaluated."""
        if self.steps_possible == 0:
            return 0.0
        return self.steps_evaluated / self.steps_possible

    def merge(self, other: "EvaluationStats") -> "EvaluationStats":
        """Counter-wise sum with ``other``.

        Used by the parallel execution layer to fan per-worker statistics
        back into one aggregate; wall times add up to total CPU seconds
        spent evaluating, not elapsed wall-clock.
        """
        return EvaluationStats(
            evaluations=self.evaluations + other.evaluations,
            cache_hits=self.cache_hits + other.cache_hits,
            short_circuits=self.short_circuits + other.short_circuits,
            full_evaluations=self.full_evaluations + other.full_evaluations,
            divergences=self.divergences + other.divergences,
            steps_evaluated=self.steps_evaluated + other.steps_evaluated,
            steps_possible=self.steps_possible + other.steps_possible,
            wall_time=self.wall_time + other.wall_time,
            batched_evaluations=self.batched_evaluations
            + other.batched_evaluations,
            compile_time=self.compile_time + other.compile_time,
            step_time=self.step_time + other.step_time,
            batch_fill=self.batch_fill + other.batch_fill,
            triage_skips=self.triage_skips + other.triage_skips,
            triage_time=self.triage_time + other.triage_time,
            kernel_fallbacks=self.kernel_fallbacks + other.kernel_fallbacks,
            pool_fallbacks=self.pool_fallbacks + other.pool_fallbacks,
            fused_cohorts=self.fused_cohorts + other.fused_cohorts,
            fused_columns=self.fused_columns + other.fused_columns,
            fusion_fallbacks=self.fusion_fallbacks + other.fusion_fallbacks,
        )

    @classmethod
    def merge_all(cls, parts: "Iterable[EvaluationStats]") -> "EvaluationStats":
        """Merge any number of per-worker statistics."""
        total = cls()
        for part in parts:
            total = total.merge(part)
        return total

    @property
    def phase_total(self) -> float:
        """Sum of the disjoint phase timers (``<= wall_time``)."""
        return (
            self.compile_time
            + self.step_time
            + self.batch_fill
            + self.triage_time
        )

    def publish(self, registry: MetricsRegistry, prefix: str = "eval") -> None:
        """Publish the counters into a :class:`~repro.obs.MetricsRegistry`."""
        registry.counter(f"{prefix}.evaluations").inc(self.evaluations)
        registry.counter(f"{prefix}.cache_hits").inc(self.cache_hits)
        registry.counter(f"{prefix}.short_circuits").inc(self.short_circuits)
        registry.counter(f"{prefix}.full_evaluations").inc(
            self.full_evaluations
        )
        registry.counter(f"{prefix}.divergences").inc(self.divergences)
        registry.counter(f"{prefix}.steps_evaluated").inc(self.steps_evaluated)
        registry.counter(f"{prefix}.steps_possible").inc(self.steps_possible)
        registry.counter(f"{prefix}.batched_evaluations").inc(
            self.batched_evaluations
        )
        registry.counter(f"{prefix}.triage_skips").inc(self.triage_skips)
        registry.counter(f"{prefix}.kernel_fallbacks").inc(
            self.kernel_fallbacks
        )
        registry.counter(f"{prefix}.pool_fallbacks").inc(self.pool_fallbacks)
        registry.counter(f"{prefix}.fused_cohorts").inc(self.fused_cohorts)
        registry.counter(f"{prefix}.fused_columns").inc(self.fused_columns)
        registry.counter(f"{prefix}.fusion_fallbacks").inc(
            self.fusion_fallbacks
        )
        registry.gauge(f"{prefix}.wall_time").add(self.wall_time)
        registry.gauge(f"{prefix}.compile_time").add(self.compile_time)
        registry.gauge(f"{prefix}.step_time").add(self.step_time)
        registry.gauge(f"{prefix}.batch_fill").add(self.batch_fill)
        registry.gauge(f"{prefix}.triage_time").add(self.triage_time)


@dataclass
class _BatchEntry:
    """Where one cohort member's fitness will come from.

    Planning resolves every member to either an anticipated tree-cache
    hit (``column`` stays -1) or a column of a structure group's batched
    rollout.  Finalisation then replays the scalar path's cache lookups
    and Algorithm 1 decisions in cohort order, reading simulated error
    curves instead of re-integrating.
    """

    individual: Individual
    model: ProcessModel
    params: tuple[float, ...]
    structure_key: str
    cache_key: Hashable | None = None
    group_key: Hashable | None = None
    column: int = -1
    #: Static triage proved this member divergent; finalisation scores it
    #: BAD_FITNESS without a simulation column (after the cache lookup,
    #: so duplicates still resolve as cache hits like the scalar path).
    triaged: bool = False


@dataclass
class _BatchGroup:
    """One structure's stacked parameter columns within a batch.

    ``columns`` dedups identical candidates (keyed like the tree cache
    when caching is on, by exact parameters otherwise) so K counts
    distinct parameter vectors.  After simulation, ``curves[:, k]`` holds
    column ``k``'s cumulative SSE against the observations -- computed
    with :func:`numpy.cumsum`, whose left-to-right accumulation order
    matches the scalar loop's running sum bit for bit -- and
    ``diverged_at[k]`` the first unusable driver row (``T`` if none).
    """

    model: ProcessModel
    structure_key: str
    columns: dict[Hashable, int] = field(default_factory=dict)
    params: list[tuple[float, ...]] = field(default_factory=list)
    curves: np.ndarray | None = None
    diverged_at: np.ndarray | None = None


def _pow2ceil(value: int) -> int:
    """The smallest power of two >= ``value`` (``value`` >= 1)."""
    return 1 << (value - 1).bit_length() if value > 1 else 1


@dataclass
class _FusedCohort:
    """Several structure groups planned into one fused kernel run.

    ``lanes`` is the padded per-member lane count: the largest member's
    column count rounded up to a power of two, so a recurring member
    set keeps hitting one compiled cohort kernel while its group sizes
    fluctuate.  Members with fewer columns pad the remaining lanes with
    clones of their first column -- inert work whose results are never
    read (the member's ``curves``/``diverged_at`` views cover only its
    live columns).
    """

    groups: list[_BatchGroup]
    lanes: int


@dataclass
class GMRFitnessEvaluator:
    """Evaluates individuals on a modeling task with TC/ES/RC switches.

    Attributes:
        task: The modeling task (drivers, observations, target state).
        config: Engine configuration supplying the TC/ES/RC switches.
        extrapolate: Extrapolation used by short-circuiting.
    """

    task: ModelingTask
    config: GMRConfig
    extrapolate: ExtrapolationFn = linear_extrapolation
    stats: EvaluationStats = field(default_factory=EvaluationStats)

    def __post_init__(self) -> None:
        self._cache = TreeCache(max_entries=self.config.tree_cache_size)
        self._compiled = KernelCache(max_entries=self.config.compiled_cache_size)
        # Batched rollouts re-integrate the model themselves, so they need
        # the plain-ODE task surface; duck-typed tasks that only provide
        # ``error_stream`` (e.g. the network-coupled river task) evaluate
        # through the scalar path.
        self._batchable = all(
            hasattr(self.task, attr)
            for attr in ("drivers", "initial_state", "dt", "clamp")
        )
        #: Best fitness seen among *full* evaluations (Algorithm 1's
        #: ``bestPrevFull``).
        self.best_prev_full: float = math.inf
        #: Disjoint phase timers, drained into ``stats`` per evaluation.
        self._profile = PhaseProfile()
        #: Optional tracer; assigned by the engine, never pickled.
        self.tracer: Tracer | None = None
        #: Lazily built static-triage context (repro.lint.triage); not
        #: pickled -- rebuilt from task/config after resume.
        self._triage_context = None
        #: Structure keys demoted to the scalar path after their batched
        #: kernel raised (degradation ladder).  Because the batched path
        #: is bit-identical with the scalar one, demotion changes only
        #: where the work happens, never the fitness stream.
        self._kernel_blocklist: set[str] = set()
        #: Structure keys excluded from cohort fusion after a fused
        #: kernel containing them raised (the ladder rung above
        #: ``_kernel_blocklist``: fused -> per-structure batched ->
        #: scalar).  A fused failure cannot be attributed to one member,
        #: so the whole cohort is demoted together.
        self._fusion_blocklist: set[str] = set()
        #: Pinned scalar kernels of demoted structures, keyed like the
        #: share table.  A blocklisted structure is a permanent scalar
        #: resident: routing it around both kernel caches keeps it from
        #: skewing hit-rate/eviction accounting with lookups whose
        #: answer never changes (and from being evicted into rebuild
        #: misses).  Never pickled -- kernels are exec-generated.
        self._demoted_scalar: dict[Hashable, CompiledModel] = {}

    @property
    def cache(self) -> TreeCache:
        return self._cache

    @property
    def compiled_cache(self) -> KernelCache:
        """The bounded share table of compiled step functions."""
        return self._compiled

    def reset(self) -> None:
        """Clear caches and the best-previous-full marker (new run)."""
        self._cache.clear()
        self._cache.stats = CacheStats()
        self._compiled.clear()
        self._compiled.stats = KernelCacheStats()
        self.best_prev_full = math.inf
        self.stats = EvaluationStats()

    def __call__(self, individual: Individual) -> float:
        return self.evaluate(individual)

    def evaluate(self, individual: Individual) -> float:
        """Evaluate one individual, honouring the configured speedups.

        Sets ``individual.fitness`` and ``individual.fully_evaluated``.
        """
        started = time.perf_counter()
        fitness, fully = self._evaluate_inner(individual)
        individual.fitness = fitness
        individual.fully_evaluated = fully
        self.stats.evaluations += 1
        self._drain_phases()
        self.stats.wall_time += time.perf_counter() - started
        return fitness

    def _drain_phases(self) -> None:
        """Fold the profiler's exclusive phase totals into the stats.

        :class:`PhaseProfile` attributes every second to exactly one
        phase, so after draining ``compile_time + step_time + batch_fill
        <= wall_time`` holds by construction on both paths.
        """
        totals = self._profile.drain()
        if totals:
            self.stats.compile_time += totals.get("compile", 0.0)
            self.stats.step_time += totals.get("step", 0.0)
            self.stats.batch_fill += totals.get("fill", 0.0)
            self.stats.triage_time += totals.get("triage", 0.0)

    def _active_tracer(self) -> Tracer | None:
        """The assigned tracer, or None when tracing is off."""
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return tracer
        return None

    def __getstate__(self) -> dict:
        # The kernel cache drops its exec-generated entries but keeps its
        # counters (see KernelCache.__getstate__); tracers hold sink file
        # handles and stay behind; the profiler restarts empty.
        state = dict(self.__dict__)
        state["tracer"] = None
        state["_profile"] = PhaseProfile()
        state["_triage_context"] = None
        state["_demoted_scalar"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Envelopes pickled before the observability layer (checkpoint
        # schema v1) predate these attributes.
        self.__dict__.setdefault("tracer", None)
        self.__dict__.setdefault("_triage_context", None)
        self.__dict__.setdefault("_kernel_blocklist", set())
        self.__dict__.setdefault("_fusion_blocklist", set())
        self.__dict__.setdefault("_demoted_scalar", {})
        if "_profile" not in self.__dict__:
            self._profile = PhaseProfile()

    def _evaluate_inner(self, individual: Individual) -> tuple[float, bool]:
        config = self.config
        model, params = individual.phenotype(
            self.task.state_names, self.task.var_order
        )
        structure_key = model.structure_key()
        total_cases = self.task.n_cases

        cache_key = None
        if config.use_tree_cache:
            cache_key = TreeCache.make_key(structure_key, params)
            cached = self._cache.get(cache_key)
            if cached is not None:
                # A hit still counts its would-be fitness cases as possible
                # (with zero evaluated), so ``step_fraction`` credits tree
                # caching with the steps it saved and the invariant
                # ``steps_evaluated <= steps_possible`` holds on every path.
                self.stats.cache_hits += 1
                self.stats.steps_possible += total_cases
                return cached, True

        if config.static_triage and self._batchable:
            with self._profile.phase("triage"):
                fatal = self._triage_fatal(model, params)
            if fatal:
                return self._record_triage_skip(cache_key, total_cases)

        return self._evaluate_scalar(model, params, structure_key, cache_key)

    def _triage_context_for_task(self):
        """The lazily built per-task triage context.

        Unit annotations resolve through the configured domain only when
        its declared states/drivers match the task (the config's domain
        name is advisory; custom tasks run interval-only triage).
        """
        if self._triage_context is None:
            from repro.lint.triage import context_for_task

            spec = None
            try:
                from repro.domains import get_domain

                spec = get_domain(self.config.domain)
            except Exception:
                spec = None
            self._triage_context = context_for_task(self.task, spec)
        return self._triage_context

    def _triage_fatal(
        self, model: ProcessModel, params: tuple[float, ...]
    ) -> bool:
        """Whether static triage proves this candidate divergent.

        Only *fatal* rules count (A001: every reachable input yields a
        NaN right-hand side).  Such a candidate raises
        ``SimulationDiverged`` on its first step and scores BAD_FITNESS
        either way, so skipping the simulation cannot change fitness
        values, selection, or the RNG stream -- runs with triage on and
        off stay bit-identical on everything the search observes.
        """
        from repro.lint.triage import fatal_findings, triage_model

        report = triage_model(model, params, self._triage_context_for_task())
        return bool(fatal_findings(report))

    def _record_triage_skip(
        self, cache_key: Hashable | None, total_cases: int
    ) -> tuple[float, bool]:
        """Score a triaged-out candidate exactly like a first-step
        divergence: BAD_FITNESS, fully evaluated, zero cases run."""
        self.stats.triage_skips += 1
        self.stats.divergences += 1
        self.stats.steps_possible += total_cases
        if cache_key is not None:
            self._cache.put(cache_key, BAD_FITNESS)
        return BAD_FITNESS, True

    def _evaluate_scalar(
        self,
        model: ProcessModel,
        params: tuple[float, ...],
        structure_key: str,
        cache_key: Hashable | None,
    ) -> tuple[float, bool]:
        """Run one individual through the scalar Algorithm 1 loop.

        The tree-cache lookup has already happened (and missed) by the
        time this runs; a successful result is still written back to the
        cache under ``cache_key``.
        """
        config = self.config
        total_cases = self.task.n_cases

        if config.use_compilation:
            with self._profile.phase("compile"):
                # Sharing must key on the parameter order too: simplification
                # can collapse structurally different models (with different
                # raw parameter vectors) onto one canonical key, but a
                # compiled step function indexes parameters positionally.
                share_key = (structure_key, model.param_order)
                if structure_key in self._kernel_blocklist:
                    # Demoted structures are permanent scalar residents:
                    # serve them from the pinned dictionary instead of
                    # the LRU caches, so they stop registering lookups
                    # whose answer never changes -- hit-rate and eviction
                    # counters keep describing the *live* kernel traffic.
                    pinned = self._demoted_scalar.get(share_key)
                    if pinned is None:
                        pinned = model._build_scalar_kernel()
                        self._demoted_scalar[share_key] = pinned
                    model._compiled = pinned
                else:
                    shared = self._compiled.get(share_key)
                    if shared is not None:
                        model._compiled = shared
                    else:
                        self._compiled.put(share_key, model.compiled())

        self.stats.steps_possible += total_cases
        threshold = config.es_threshold

        sse = 0.0
        cases_done = 0
        with self._profile.phase("step"):
            try:
                for squared_error in self.task.error_stream(
                    model, params, use_compiled=config.use_compilation
                ):
                    sse += squared_error
                    cases_done += 1
                    if threshold is not None and cases_done < total_cases:
                        fitness = math.sqrt(sse / cases_done)
                        if fitness > self.best_prev_full * threshold:
                            estimate = self.extrapolate(
                                fitness, cases_done, total_cases
                            )
                            if estimate > self.best_prev_full:
                                self.stats.short_circuits += 1
                                self.stats.steps_evaluated += cases_done
                                return estimate, False
            except (SimulationDiverged, OverflowError):
                self.stats.divergences += 1
                self.stats.steps_evaluated += cases_done
                if cache_key is not None:
                    self._cache.put(cache_key, BAD_FITNESS)
                return BAD_FITNESS, True

        self.stats.steps_evaluated += cases_done
        if cases_done == 0 or not math.isfinite(sse):
            self.stats.divergences += 1
            return BAD_FITNESS, True
        fitness = math.sqrt(sse / cases_done)
        self.stats.full_evaluations += 1
        if fitness < self.best_prev_full:
            self.best_prev_full = fitness
        if cache_key is not None:
            self._cache.put(cache_key, fitness)
        return fitness, True

    def evaluate_batch(self, individuals: Sequence[Individual]) -> list[float]:
        """Evaluate a cohort through the batched NumPy kernels.

        Groups the cohort by model structure, integrates each group's K
        distinct parameter vectors in one vectorised rollout per
        :attr:`GMRConfig.kernel_batch_size` chunk -- and, with
        :attr:`GMRConfig.fuse_structures` on, fuses up to
        :attr:`GMRConfig.fuse_cohort_size` structure groups into one
        padded multi-structure kernel run (:meth:`_simulate_cohort`),
        which pools shared subexpressions across structures and removes
        the per-structure Python dispatch -- then finalises every
        member *in cohort order*, replaying exactly the decisions the
        scalar path would have made: tree-cache lookups (hits produced by
        earlier members of this very cohort included), Algorithm 1
        short-circuits against the live ``best_prev_full`` marker,
        divergence scoring, and cache write-back.  Fitness values, the
        marker, and all statistics therefore match a sequence of
        :meth:`evaluate` calls to float tolerance -- the batched kernel
        merely front-loads the integration work.

        Falls back to sequential :meth:`evaluate` calls when batched
        kernels are disabled (``use_batched_kernel`` or
        ``use_compilation`` off), when the task lacks the plain-ODE
        surface batched rollouts integrate (``drivers``,
        ``initial_state``, ``dt``, ``clamp`` -- duck-typed tasks like the
        network-coupled river task only provide ``error_stream``), or
        when a subclass overrides :meth:`evaluate` (per-evaluation hooks
        such as fault injection must keep firing once per individual).
        """
        cohort = list(individuals)
        if not cohort:
            return []
        config = self.config
        trace = self._active_tracer()
        if (
            not config.use_batched_kernel
            or not config.use_compilation
            or not self._batchable
            or type(self).evaluate is not GMRFitnessEvaluator.evaluate
        ):
            if trace is None:
                return [self.evaluate(individual) for individual in cohort]
            before_hits = self.stats.cache_hits
            scalar_started = time.perf_counter()
            results = [self.evaluate(individual) for individual in cohort]
            trace.point(
                "evaluation_batch",
                size=len(cohort),
                batched=False,
                cache_hits=self.stats.cache_hits - before_hits,
                wall_time=time.perf_counter() - scalar_started,
                source="scalar",
            )
            return results

        if trace is not None:
            before = (
                self.stats.cache_hits,
                self.stats.compile_time,
                self.stats.step_time,
                self.stats.batch_fill,
            )
        batch_started = time.perf_counter()
        entries, groups = self._plan_batch(cohort)
        with self._profile.phase("fill"):
            fused, loose = self._plan_cohorts(groups)
        for fused_cohort in fused:
            self._simulate_cohort(fused_cohort)
        for group in loose:
            self._simulate_group(group)
        results = []
        for entry in entries:
            fitness, fully = self._finalize_entry(entry, groups)
            entry.individual.fitness = fitness
            entry.individual.fully_evaluated = fully
            self.stats.evaluations += 1
            results.append(fitness)
        self._drain_phases()
        wall = time.perf_counter() - batch_started
        self.stats.wall_time += wall
        if trace is not None:
            trace.point(
                "evaluation_batch",
                size=len(cohort),
                batched=True,
                groups=len(groups),
                columns=sum(len(g.params) for g in groups.values()),
                cohorts=len(fused),
                cache_hits=self.stats.cache_hits - before[0],
                wall_time=wall,
                compile_time=self.stats.compile_time - before[1],
                step_time=self.stats.step_time - before[2],
                batch_fill=self.stats.batch_fill - before[3],
                source="batched",
            )
        return results

    def _plan_batch(
        self, cohort: list[Individual]
    ) -> tuple[list[_BatchEntry], dict[Hashable, _BatchGroup]]:
        """Resolve cohort members to cache hits or simulation columns."""
        with self._profile.phase("fill"):
            return self._plan_batch_inner(cohort)

    def _plan_batch_inner(
        self, cohort: list[Individual]
    ) -> tuple[list[_BatchEntry], dict[Hashable, _BatchGroup]]:
        entries: list[_BatchEntry] = []
        groups: dict[Hashable, _BatchGroup] = {}
        use_cache = self.config.use_tree_cache
        triage = self.config.static_triage and self._batchable
        # Per-batch memo of triage verdicts so one candidate appearing
        # many times is analysed once; with caching on the first
        # occurrence writes BAD_FITNESS back during finalisation and the
        # duplicates resolve as cache hits, matching the scalar path.
        verdicts: dict[Hashable, bool] = {}
        for individual in cohort:
            model, params = individual.phenotype(
                self.task.state_names, self.task.var_order
            )
            entry = _BatchEntry(
                individual=individual,
                model=model,
                params=params,
                structure_key=model.structure_key(),
            )
            entries.append(entry)
            if use_cache:
                entry.cache_key = TreeCache.make_key(
                    entry.structure_key, params
                )
                # peek, not get: the stats-counting lookup happens during
                # finalisation, in cohort order, like the scalar path's.
                if self._cache.peek(entry.cache_key) is not None:
                    continue
            if triage:
                verdict_key = (
                    entry.cache_key
                    if entry.cache_key is not None
                    else (entry.structure_key, params)
                )
                fatal = verdicts.get(verdict_key)
                if fatal is None:
                    with self._profile.phase("triage"):
                        fatal = self._triage_fatal(model, params)
                    verdicts[verdict_key] = fatal
                if fatal:
                    # Doomed candidates never join a simulation group
                    # (that's the saving: no compile, no rollout column).
                    entry.triaged = True
                    continue
            if entry.structure_key in self._kernel_blocklist:
                # Structure demoted after a batched-kernel failure;
                # finalisation evaluates it through the scalar path.
                continue
            group_key = (entry.structure_key, model.param_order)
            group = groups.get(group_key)
            if group is None:
                group = _BatchGroup(
                    model=model, structure_key=entry.structure_key
                )
                groups[group_key] = group
            dedup_key = (
                entry.cache_key if entry.cache_key is not None else params
            )
            column = group.columns.get(dedup_key)
            if column is None:
                column = len(group.params)
                group.columns[dedup_key] = column
                group.params.append(params)
            entry.group_key = group_key
            entry.column = column
        # Structure groups too small to amortise NumPy overhead fall back
        # to the scalar kernel during finalisation.
        min_columns = self.config.kernel_min_batch
        for group_key in [
            key
            for key, group in groups.items()
            if len(group.params) < min_columns
        ]:
            del groups[group_key]
        return entries, groups

    def _plan_cohorts(
        self, groups: dict[Hashable, _BatchGroup]
    ) -> tuple[list[_FusedCohort], list[_BatchGroup]]:
        """Pack structure groups into fused cohorts; the rest stay loose.

        Groups are eligible when fusion is on, their structure is not
        fusion-blocklisted, and their column count fits one rollout
        chunk (fused kernels never chunk: ``K <= kernel_batch_size``).
        Eligible groups are partitioned by the orders the kernel bakes
        in (``var_order``/``state_names``), sorted by their group key,
        and packed ``fuse_cohort_size`` at a time -- deterministic given
        the group *set*, independent of cohort arrival order, so a
        recurring set of structures re-produces the same cohort
        signatures and keeps hitting compiled kernels across shuffled
        generations.  A chunk of one fuses with nobody and stays loose.

        Subclasses that override :meth:`_simulate_group_inner` (the
        fault-injection harness) keep the per-structure routing: their
        hook must fire once per structure group.
        """
        config = self.config
        fused: list[_FusedCohort] = []
        loose: list[_BatchGroup] = []
        if (
            not config.fuse_structures
            or type(self)._simulate_group_inner
            is not GMRFitnessEvaluator._simulate_group_inner
        ):
            return fused, list(groups.values())
        partitions: dict[tuple, list[tuple[Hashable, _BatchGroup]]] = {}
        for group_key, group in groups.items():
            if (
                group.structure_key in self._fusion_blocklist
                or len(group.params) > config.kernel_batch_size
            ):
                loose.append(group)
                continue
            partition_key = (group.model.var_order, group.model.state_names)
            partitions.setdefault(partition_key, []).append(
                (group_key, group)
            )
        for members in partitions.values():
            members.sort(key=lambda item: item[0])
            for start in range(0, len(members), config.fuse_cohort_size):
                chunk = members[start : start + config.fuse_cohort_size]
                if len(chunk) < 2:
                    loose.extend(group for __, group in chunk)
                    continue
                lanes = _pow2ceil(
                    max(len(group.params) for __, group in chunk)
                )
                fused.append(
                    _FusedCohort(
                        groups=[group for __, group in chunk], lanes=lanes
                    )
                )
        return fused, loose

    def _simulate_cohort(self, cohort: _FusedCohort) -> None:
        """Run one fused cohort's rollout and error curves.

        Top rung of the degradation ladder: if the fused kernel raises
        (compile or rollout), every member structure is blocklisted
        from fusion and the cohort re-simulates through the
        per-structure batched path (:meth:`_simulate_group`), which on
        failure demotes a structure the rest of the way to scalar.  The
        fused path is bit-identical with the per-structure one, so the
        only observable differences are the ``fusion_fallbacks``
        counter and a ``degradation`` trace event.
        """
        try:
            with self._profile.phase("compile"):
                kernel = compile_cohort(
                    [group.model for group in cohort.groups], cohort.lanes
                )
            with self._profile.phase("step"):
                self._simulate_cohort_inner(cohort, kernel)
        except Exception as error:
            for group in cohort.groups:
                group.curves = None
                group.diverged_at = None
                self._fusion_blocklist.add(group.structure_key)
            self.stats.fusion_fallbacks += 1
            tracer = self._active_tracer()
            if tracer is not None:
                tracer.point(
                    "degradation",
                    what="cohort_structure_fallback",
                    error_type=type(error).__name__,
                    detail=str(error)[:200],
                )
            for group in cohort.groups:
                self._simulate_group(group)
            return
        self.stats.fused_cohorts += 1
        self.stats.fused_columns += sum(
            len(group.params) for group in cohort.groups
        )

    def _simulate_cohort_inner(
        self, cohort: _FusedCohort, kernel: CompiledCohortKernel
    ) -> None:
        """Integrate all member structures in one fused padded pass.

        Member ``m`` owns lanes ``[m * K, m * K + len(params))`` of the
        fused parameter matrix; its padding lanes clone its first
        column (inert, and they diverge exactly when that column does,
        so padding never trips the rollout's NaN fast path on its own).
        Parameter rows beyond a member's own count are zero-filled --
        the member's kernel never reads them.  Error curves are
        computed over the full width with the same operations as the
        per-structure path and handed to each group as lane-slice
        views, so finalisation is oblivious to where the curves came
        from.
        """
        task = self.task
        lanes = cohort.lanes
        params_matrix = np.zeros((kernel.n_params, kernel.width))
        for member, group in enumerate(cohort.groups):
            columns = np.array(group.params, dtype=float).T
            lo = member * lanes
            live = columns.shape[1]
            params_matrix[: columns.shape[0], lo : lo + live] = columns
            if live < lanes:
                params_matrix[: columns.shape[0], lo + live : lo + lanes] = (
                    columns[:, :1]
                )
        first_model = cohort.groups[0].model
        rollout = fused_euler_rollout(
            kernel,
            params_matrix,
            task.drivers,
            task.initial_state,
            first_model.var_order,
            dt=task.dt,
            clamp=task.clamp,
        )
        target_index = first_model.state_names.index(task.target_state)
        predicted = rollout.target_series(target_index)
        first_bad = self._first_bad_rows(predicted, rollout.diverged_at)
        errors = predicted - task.observed[:, np.newaxis]
        curves = np.cumsum(errors * errors, axis=0)
        for member, group in enumerate(cohort.groups):
            lo = member * lanes
            live = len(group.params)
            group.curves = curves[:, lo : lo + live]
            group.diverged_at = first_bad[lo : lo + live]

    def _first_bad_rows(
        self, predicted: np.ndarray, diverged_at: np.ndarray
    ) -> np.ndarray:
        """Per-column first unusable row, folding in non-finite predictions.

        The scalar error stream also refuses non-finite *predictions*
        (possible under a clamp band with an infinite bound); treat the
        first such row like a divergence row.
        """
        first_bad = diverged_at.copy()
        with np.errstate(invalid="ignore"):
            nonfinite = ~np.isfinite(predicted)
        if nonfinite.any():
            np.minimum(
                first_bad,
                np.where(
                    nonfinite.any(axis=0),
                    nonfinite.argmax(axis=0),
                    predicted.shape[0],
                ),
                out=first_bad,
            )
        return first_bad

    def _simulate_group(self, group: _BatchGroup) -> None:
        """Run one structure group's batched rollouts and error curves.

        First rung of the degradation ladder: if the batched kernel
        raises (compile or rollout), the group's curves stay unset -- so
        finalisation falls through to the scalar path for every member
        -- and the structure is blocklisted from future batching.  The
        batched path is bit-identical with the scalar one, so the only
        observable differences are the ``kernel_fallbacks`` counter and
        a ``degradation`` trace event.
        """
        try:
            with self._profile.phase("compile"):
                group.model.compiled_batched()
            with self._profile.phase("step"):
                self._simulate_group_inner(group)
        except Exception as error:
            group.curves = None
            group.diverged_at = None
            self._kernel_blocklist.add(group.structure_key)
            self.stats.kernel_fallbacks += 1
            tracer = self._active_tracer()
            if tracer is not None:
                tracer.point(
                    "degradation",
                    what="kernel_scalar_fallback",
                    error_type=type(error).__name__,
                    detail=str(error)[:200],
                )

    def _simulate_group_inner(self, group: _BatchGroup) -> None:
        task = self.task
        target_index = group.model.state_names.index(task.target_state)
        observed = task.observed[:, np.newaxis]
        n_cases = task.n_cases
        n_columns = len(group.params)
        params_matrix = np.array(group.params, dtype=float).T
        curves = np.empty((n_cases, n_columns))
        diverged_at = np.empty(n_columns, dtype=np.int64)
        width = self.config.kernel_batch_size
        for start in range(0, n_columns, width):
            stop = min(start + width, n_columns)
            rollout = batched_euler_rollout(
                group.model,
                params_matrix[:, start:stop],
                task.drivers,
                task.initial_state,
                dt=task.dt,
                clamp=task.clamp,
            )
            predicted = rollout.target_series(target_index)
            first_bad = self._first_bad_rows(predicted, rollout.diverged_at)
            errors = predicted - observed
            np.cumsum(errors * errors, axis=0, out=curves[:, start:stop])
            diverged_at[start:stop] = first_bad
        group.curves = curves
        group.diverged_at = diverged_at

    def _finalize_entry(
        self, entry: _BatchEntry, groups: dict[Hashable, _BatchGroup]
    ) -> tuple[float, bool]:
        """Score one cohort member exactly as the scalar path would."""
        total_cases = self.task.n_cases
        if entry.cache_key is not None:
            cached = self._cache.get(entry.cache_key)
            if cached is not None:
                self.stats.cache_hits += 1
                self.stats.steps_possible += total_cases
                return cached, True
        if entry.triaged:
            return self._record_triage_skip(entry.cache_key, total_cases)
        group = (
            groups.get(entry.group_key)
            if entry.group_key is not None
            else None
        )
        if group is None or group.curves is None:
            # Either an anticipated cache hit whose entry was evicted
            # mid-batch, or a structure group below kernel_min_batch.
            return self._evaluate_scalar(
                entry.model, entry.params, entry.structure_key, entry.cache_key
            )
        self.stats.batched_evaluations += 1
        self.stats.steps_possible += total_cases
        assert group.diverged_at is not None
        return self._score_curve(
            group.curves[:, entry.column],
            int(group.diverged_at[entry.column]),
            entry.cache_key,
        )

    def _score_curve(
        self, cumulative_sse: np.ndarray, usable_cases: int, cache_key: Hashable | None
    ) -> tuple[float, bool]:
        """Replay Algorithm 1 over a precomputed cumulative-SSE curve.

        ``usable_cases`` is the number of leading fitness cases the
        scalar stream would have produced before raising (the column's
        first bad row); ``total_cases`` means the column never diverged.
        Partial RMSEs come out bitwise-equal to the scalar loop's
        (``sqrt(cum[t] / (t + 1))`` on the same accumulation order), so
        short-circuit decisions and returned estimates match exactly.
        """
        total_cases = self.task.n_cases
        threshold = self.config.es_threshold
        best = self.best_prev_full
        if threshold is not None:
            # Scalar checks after each case t (0-based) with t + 1 < total
            # and only for cases that actually ran (t < usable_cases).
            limit = min(usable_cases, total_cases - 1)
            if limit > 0 and best < math.inf:
                steps = np.arange(1, limit + 1, dtype=float)
                with np.errstate(invalid="ignore", divide="ignore"):
                    partial = np.sqrt(cumulative_sse[:limit] / steps)
                    candidates = np.nonzero(partial > best * threshold)[0]
                for index in candidates:
                    cases_done = int(index) + 1
                    estimate = self.extrapolate(
                        float(partial[index]), cases_done, total_cases
                    )
                    if estimate > best:
                        self.stats.short_circuits += 1
                        self.stats.steps_evaluated += cases_done
                        return estimate, False
        if usable_cases < total_cases:
            self.stats.divergences += 1
            self.stats.steps_evaluated += usable_cases
            if cache_key is not None:
                self._cache.put(cache_key, BAD_FITNESS)
            return BAD_FITNESS, True
        self.stats.steps_evaluated += total_cases
        if total_cases == 0:
            self.stats.divergences += 1
            return BAD_FITNESS, True
        sse = float(cumulative_sse[total_cases - 1])
        if not math.isfinite(sse):
            self.stats.divergences += 1
            return BAD_FITNESS, True
        fitness = math.sqrt(sse / total_cases)
        self.stats.full_evaluations += 1
        if fitness < self.best_prev_full:
            self.best_prev_full = fitness
        if cache_key is not None:
            self._cache.put(cache_key, fitness)
        return fitness, True
