"""Failure policies and campaign orchestration (fault tolerance, tier 2).

The paper's experiments are long campaigns of repeated independent runs
(60 per method); at that scale worker crashes, OOM kills, and preemption
are routine, and an all-or-nothing campaign wastes everything it already
computed.  This module defines *what should happen when a run fails*:

* :class:`FailurePolicy` -- ``fail_fast`` (the historical behaviour:
  raise on the first failure), ``collect`` (finish everything else and
  return structured :class:`RunFailure` records alongside the completed
  results), or ``retry`` (re-attempt failed seeds under a
  :class:`RetryPolicy` before giving up collect-style).
* :class:`RetryPolicy` -- bounded attempts with exponential backoff and
  *deterministic* jitter derived from the seed and attempt number, so a
  retried campaign behaves identically on every host.
* :class:`CampaignResult` -- completed runs plus structured failures, so
  N-1 good runs survive one bad seed.
* :func:`run_campaign` -- campaign-level durability on top of
  :func:`repro.gp.parallel.run_many_parallel`: completed results persist
  to a checkpoint directory and interrupted runs resume from their
  per-run snapshots (:mod:`repro.gp.checkpoint`), so re-invoking after a
  crash only pays for the work not yet done.
"""

from __future__ import annotations

import os
import random
import traceback as traceback_module
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.gp.checkpoint import (
    CheckpointError,
    claim_checkpoint_dir,
    load_result,
    result_file,
)
from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.gp.engine import GMREngine, RunResult
    from repro.obs.metrics import MetricsRegistry

#: The three failure-policy modes.
FAIL_FAST = "fail_fast"
COLLECT = "collect"
RETRY = "retry"

_MODES = (FAIL_FAST, COLLECT, RETRY)


class ResilienceConfigError(ValueError):
    """Raised for inconsistent retry/failure-policy configurations."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Attributes:
        max_attempts: Total attempts per seed (1 = no retries).
        backoff_base: Delay before the first retry, seconds.
        backoff_factor: Multiplier applied per subsequent retry.
        backoff_max: Upper bound on any single delay, seconds.
        jitter: Fractional jitter band; the delay is scaled by a factor
            in ``[1 - jitter, 1 + jitter]`` drawn from an RNG seeded with
            the run seed and attempt number -- deterministic, so retried
            campaigns stay reproducible, yet decorrelated across seeds so
            retried workers do not stampede in lock-step.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceConfigError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ResilienceConfigError("backoff_base must be >= 0")
        if self.backoff_factor < 1:
            raise ResilienceConfigError("backoff_factor must be >= 1")
        if self.backoff_max < 0:
            raise ResilienceConfigError("backoff_max must be >= 0")
        if self.jitter < 0 or self.jitter > 1:
            raise ResilienceConfigError("jitter must lie in [0, 1]")

    def delay(self, seed: int, attempt: int) -> float:
        """Seconds to wait before retrying ``seed`` after ``attempt``
        failed attempts (``attempt >= 1``); pure in its arguments."""
        if attempt < 1:
            raise ResilienceConfigError("attempt numbering starts at 1")
        raw = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter == 0 or raw == 0:
            return raw
        unit = random.Random(seed * 1_000_003 + attempt).random()
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))


@dataclass(frozen=True)
class FailurePolicy:
    """What a campaign does when an individual run fails.

    Attributes:
        mode: ``fail_fast`` raises :class:`~repro.gp.parallel.
            ParallelRunError` on the first failure (cancelling outstanding
            work); ``collect`` records a :class:`RunFailure` and keeps
            going; ``retry`` re-attempts per ``retry`` before recording.
        retry: Retry schedule (consulted only in ``retry`` mode).
        timeout: Per-run watchdog in seconds, or None.  Enforced on
            pooled execution, measured from the submission of the run's
            round; a run that exceeds it is recorded as failed with a
            ``TimeoutError``.  (A queued run shares its round's clock, so
            treat this as a budget for *round* stragglers, not a precise
            per-process limit.)
        max_pool_rebuilds: How many times a campaign may rebuild a pool
            that broke (``BrokenProcessPool`` -- a worker was OOM-killed
            or segfaulted) and re-submit the affected seeds before
            treating the breakage as a per-run failure.  Re-submission
            after a pool break does not consume retry attempts: the run
            never got to fail on its own.
    """

    mode: str = FAIL_FAST
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout: float | None = None
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ResilienceConfigError(
                f"unknown failure-policy mode {self.mode!r}; "
                f"choose from {_MODES}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ResilienceConfigError("timeout must be positive or None")
        if self.max_pool_rebuilds < 0:
            raise ResilienceConfigError("max_pool_rebuilds must be >= 0")

    @classmethod
    def fail_fast(cls, timeout: float | None = None) -> "FailurePolicy":
        """Raise on the first failure (the historical contract)."""
        return cls(mode=FAIL_FAST, timeout=timeout)

    @classmethod
    def collect(cls, timeout: float | None = None) -> "FailurePolicy":
        """Keep going; return failures alongside completed runs."""
        return cls(mode=COLLECT, timeout=timeout)

    @classmethod
    def retrying(
        cls,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 30.0,
        jitter: float = 0.25,
        timeout: float | None = None,
    ) -> "FailurePolicy":
        """Retry failed seeds, then collect whatever still fails."""
        return cls(
            mode=RETRY,
            retry=RetryPolicy(
                max_attempts=max_attempts,
                backoff_base=backoff_base,
                backoff_factor=backoff_factor,
                backoff_max=backoff_max,
                jitter=jitter,
            ),
            timeout=timeout,
        )

    @property
    def max_attempts(self) -> int:
        """Attempts per seed under this policy (1 unless retrying)."""
        return self.retry.max_attempts if self.mode == RETRY else 1


@dataclass(frozen=True)
class RunFailure:
    """Structured record of one seed that could not be completed.

    Attributes:
        seed: The failed run's seed.
        attempts: How many attempts were made before giving up.
        error_type: Qualified name of the final exception's type.
        message: ``str()`` of the final exception.
        traceback: Formatted traceback of the final exception (includes
            the remote traceback when the failure crossed a process
            boundary).
        elapsed: Wall-clock seconds spent on this seed across attempts.
    """

    seed: int
    attempts: int
    error_type: str
    message: str
    traceback: str
    elapsed: float

    @classmethod
    def from_exception(
        cls,
        seed: int,
        attempts: int,
        error: BaseException,
        elapsed: float,
    ) -> "RunFailure":
        """Capture an exception (and its cause chain) as a record."""
        return cls(
            seed=seed,
            attempts=attempts,
            error_type=type(error).__name__,
            message=str(error),
            traceback="".join(
                traceback_module.format_exception(
                    type(error), error, error.__traceback__
                )
            ),
            elapsed=elapsed,
        )

    def describe(self) -> str:
        return (
            f"seed {self.seed} failed after {self.attempts} attempt(s) "
            f"in {self.elapsed:.1f}s: {self.error_type}: {self.message}"
        )


class CampaignError(RuntimeError):
    """Raised by :meth:`CampaignResult.raise_if_failed`."""

    def __init__(self, failures: Iterable[RunFailure]) -> None:
        self.failures = list(failures)
        lines = "; ".join(failure.describe() for failure in self.failures)
        super().__init__(
            f"{len(self.failures)} run(s) failed permanently: {lines}"
        )


@dataclass
class CampaignResult:
    """Outcome of a fault-tolerant campaign: partial results survive.

    Attributes:
        completed: Successfully finished runs, in seed order.
        failed: Structured records of permanently failed seeds, in seed
            order (empty under ``fail_fast``, which raises instead).
        stop_reason: Why the campaign stopped early, if it did
            (``budget:*`` or ``signal:*``, from the first run the
            :class:`~repro.gp.governor.RunGovernor` stopped), or None
            for a campaign that ran to completion.  A stopped run's
            partial result is in ``completed`` but keeps its checkpoint
            on disk, so re-invoking the campaign with a larger budget
            resumes it.
    """

    completed: list["RunResult"]
    failed: list[RunFailure]
    stop_reason: str | None = None

    @property
    def ok(self) -> bool:
        return not self.failed

    @property
    def n_runs(self) -> int:
        return len(self.completed) + len(self.failed)

    def raise_if_failed(self) -> None:
        """Raise :class:`CampaignError` if any seed failed permanently."""
        if self.failed:
            raise CampaignError(self.failed)

    def results(self) -> list["RunResult"]:
        """The completed runs, after asserting there were no failures."""
        self.raise_if_failed()
        return self.completed

    def publish(
        self, registry: "MetricsRegistry", prefix: str = "campaign"
    ) -> None:
        """Publish campaign outcomes into a metrics registry.

        Counts completed/failed seeds, folds every completed run's
        evaluation statistics into ``<prefix>.eval.*``, and feeds the
        per-run best fitnesses into a histogram.
        """
        registry.counter(f"{prefix}.completed").inc(len(self.completed))
        registry.counter(f"{prefix}.failed").inc(len(self.failed))
        retries = sum(
            max(0, failure.attempts - 1) for failure in self.failed
        )
        registry.counter(f"{prefix}.failed_attempts").inc(retries)
        best = registry.histogram(f"{prefix}.best_fitness")
        for result in self.completed:
            result.stats.publish(registry, prefix=f"{prefix}.eval")
            best.observe(result.best_fitness)


def run_campaign(
    engine: "GMREngine",
    n_runs: int,
    base_seed: int = 0,
    max_workers: int | None = None,
    policy: FailurePolicy | None = None,
    checkpoint_dir: str | os.PathLike[str] | None = None,
    tracer: Tracer | None = None,
    lock: bool = True,
    lock_wait: float = 0.0,
) -> CampaignResult:
    """Run a campaign of independent seeded runs with durable state.

    Like :func:`repro.gp.parallel.run_many_parallel` with a policy
    (default :meth:`FailurePolicy.collect`), plus campaign-level
    durability when ``checkpoint_dir`` is given:

    * every completed run's :class:`~repro.gp.engine.RunResult` is
      persisted to ``run-<seed>.result`` (atomically, integrity-checked),
      and re-invoking the campaign loads it instead of re-running;
    * when ``engine.config.checkpoint_every > 0``, in-flight runs
      snapshot to ``run-<seed>.ckpt`` on that cadence and a re-invoked
      campaign resumes each interrupted run from its last snapshot --
      so a crash at generation 95 of 100 costs at most
      ``checkpoint_every`` generations, not the whole run.

    Results are bit-identical to an uninterrupted campaign either way
    (resume replays from a full snapshot of the run's loop state).
    Unreadable result/checkpoint files are ignored with a warning and
    the affected seed is simply recomputed.

    The checkpoint directory is *claimed* for the campaign's duration
    (``lock``, on by default): a second process invoking a campaign
    over the same directory -- a double submission, or a restarted
    scheduler racing a still-dying predecessor -- is refused with
    :class:`~repro.gp.checkpoint.CheckpointLockError` instead of
    interleaving checkpoint renames and retention-ring pruning with
    the live owner.  ``lock_wait > 0`` waits up to that many seconds
    for the claim instead of refusing immediately; claims left by a
    dead process are taken over automatically (see
    :func:`~repro.gp.checkpoint.claim_checkpoint_dir`).

    ``tracer`` wraps the execution in a ``campaign`` span and records
    ``campaign_retry`` events (tracing is observational only: traced
    campaigns return bit-identical results).
    """
    from repro.gp.parallel import execute_campaign

    if policy is None:
        policy = FailurePolicy.collect()
    seeds = [base_seed + index for index in range(n_runs)]
    claim = None
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        if lock:
            claim = claim_checkpoint_dir(checkpoint_dir, wait=lock_wait)
    try:
        prior: list["RunResult"] = []
        pending = seeds
        if checkpoint_dir is not None:
            pending = []
            for seed in seeds:
                path = result_file(checkpoint_dir, seed)
                if os.path.exists(path):
                    try:
                        prior.append(load_result(path))
                        continue
                    except CheckpointError as exc:
                        warnings.warn(
                            f"re-running seed {seed}: {exc}",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                pending.append(seed)
        if tracer is not None and not tracer.enabled:
            tracer = None
        if tracer is None:
            outcome = execute_campaign(
                engine, pending, policy, max_workers, checkpoint_dir
            )
        else:
            with tracer.span(
                "campaign", n_seeds=len(pending), mode=policy.mode
            ) as span:
                outcome = execute_campaign(
                    engine, pending, policy, max_workers, checkpoint_dir,
                    tracer,
                )
                tracer.end_span_fields(
                    "campaign",
                    span,
                    completed=len(outcome.completed),
                    failed=len(outcome.failed),
                )
    finally:
        if claim is not None:
            claim.release()
    completed = sorted(
        prior + outcome.completed, key=lambda result: result.seed
    )
    return CampaignResult(
        completed=completed,
        failed=outcome.failed,
        stop_reason=outcome.stop_reason,
    )
