"""Genetic model revision: the TAG3P-based GMR engine."""

from repro.gp.cache import CacheStats, TreeCache
from repro.gp.checkpoint import (
    CheckpointError,
    RunCheckpoint,
    load_checkpoint,
    load_checkpoint_resilient,
    save_checkpoint,
)
from repro.gp.config import ConfigError, GMRConfig, OperatorProbabilities
from repro.gp.engine import (
    GenerationRecord,
    GMREngine,
    RunResult,
    run_many,
)
from repro.gp.governor import (
    CampaignBudget,
    GovernorConfigError,
    RunGovernor,
)
from repro.gp.faults import (
    FaultInjectingEngine,
    FaultInjectingEvaluator,
    FaultPlan,
    InjectedFault,
)
from repro.gp.fitness import (
    EvaluationStats,
    GMRFitnessEvaluator,
    linear_extrapolation,
    pessimistic_extrapolation,
)
from repro.gp.individual import Individual
from repro.gp.init import (
    InitialisationError,
    initial_population,
    random_individual,
)
from repro.gp.knowledge import (
    BINARY_REVISION_OPS,
    RANDOM_OPERAND,
    UNARY_REVISION_OPS,
    ExtensionSpec,
    KnowledgeError,
    ParameterPrior,
    PriorKnowledge,
    build_grammar,
)
from repro.gp.local_search import deletion, hill_climb, insertion
from repro.gp.parallel import (
    EvaluationBackend,
    ParallelRunError,
    ProcessPoolBackend,
    SerialBackend,
    aggregate_stats,
    run_many_parallel,
)
from repro.gp.operators import (
    crossover,
    gaussian_mutation,
    gaussian_mutation_best_of,
    replication,
    subtree_mutation,
)
from repro.gp.resilience import (
    CampaignError,
    CampaignResult,
    FailurePolicy,
    ResilienceConfigError,
    RetryPolicy,
    RunFailure,
    run_campaign,
)
from repro.gp.selection import best_of, elites, tournament_select

__all__ = [
    "BINARY_REVISION_OPS",
    "CacheStats",
    "CampaignBudget",
    "CampaignError",
    "CampaignResult",
    "CheckpointError",
    "ConfigError",
    "EvaluationBackend",
    "EvaluationStats",
    "ExtensionSpec",
    "FailurePolicy",
    "FaultInjectingEngine",
    "FaultInjectingEvaluator",
    "FaultPlan",
    "GMRConfig",
    "GMREngine",
    "GMRFitnessEvaluator",
    "GenerationRecord",
    "GovernorConfigError",
    "Individual",
    "InitialisationError",
    "InjectedFault",
    "KnowledgeError",
    "OperatorProbabilities",
    "ParallelRunError",
    "ParameterPrior",
    "PriorKnowledge",
    "ProcessPoolBackend",
    "RANDOM_OPERAND",
    "ResilienceConfigError",
    "RetryPolicy",
    "RunCheckpoint",
    "RunFailure",
    "RunGovernor",
    "RunResult",
    "SerialBackend",
    "TreeCache",
    "UNARY_REVISION_OPS",
    "aggregate_stats",
    "best_of",
    "build_grammar",
    "crossover",
    "deletion",
    "elites",
    "gaussian_mutation",
    "gaussian_mutation_best_of",
    "hill_climb",
    "initial_population",
    "insertion",
    "linear_extrapolation",
    "load_checkpoint",
    "load_checkpoint_resilient",
    "pessimistic_extrapolation",
    "random_individual",
    "replication",
    "run_campaign",
    "run_many",
    "run_many_parallel",
    "save_checkpoint",
    "subtree_mutation",
    "tournament_select",
]
