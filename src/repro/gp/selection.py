"""Selection mechanisms: tournament selection and elitism."""

from __future__ import annotations

import random
from typing import Sequence

from repro.gp.individual import Individual


class SelectionError(ValueError):
    """Raised when selection is asked to act on an empty population."""


def _fitness_or_worst(individual: Individual) -> float:
    if individual.fitness is None:
        return float("inf")
    return individual.fitness


def tournament_select(
    population: Sequence[Individual],
    tournament_size: int,
    rng: random.Random,
) -> Individual:
    """Pick the fittest of ``tournament_size`` uniform random entrants."""
    if not population:
        raise SelectionError("cannot select from an empty population")
    entrants = [rng.choice(population) for __ in range(max(1, tournament_size))]
    return min(entrants, key=_fitness_or_worst)


def elites(
    population: Sequence[Individual],
    elite_size: int,
) -> list[Individual]:
    """The ``elite_size`` fittest individuals (copies, fitness preserved)."""
    ranked = sorted(population, key=_fitness_or_worst)
    chosen = []
    for individual in ranked[: max(0, elite_size)]:
        clone = individual.copy()
        clone.fitness = individual.fitness
        clone.fully_evaluated = individual.fully_evaluated
        chosen.append(clone)
    return chosen


def best_of(population: Sequence[Individual]) -> Individual:
    """The fittest individual of a population."""
    if not population:
        raise SelectionError("empty population has no best individual")
    return min(population, key=_fitness_or_worst)
