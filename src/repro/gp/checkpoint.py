"""Checkpoint/resume for GMR runs (crash tolerance, tier 1).

A checkpoint is a complete snapshot of one run's loop state at a
generation boundary: the generation number, the population, the champion,
the per-generation history, the RNG state, and the evaluator (whose tree
cache, statistics, and ES ``best_prev_full`` marker all matter for exact
replay).  Because a generation is fully determined by that state, a run
resumed from the checkpoint of generation *g* reproduces the remaining
generations -- and the final :class:`~repro.gp.engine.RunResult` history
-- bit-identically to the uninterrupted run.

The on-disk format is deliberately paranoid, because checkpoints exist
precisely for the moments when processes die mid-write:

* **atomic**: payloads are written to a sibling temp file, fsynced, and
  renamed into place, so a crash never leaves a half-written checkpoint
  under the real name;
* **versioned**: files open with an 8-byte magic that encodes the format
  version; readers refuse anything they do not understand;
* **integrity-checked**: a SHA-256 digest over the payload is stored in
  the header and verified on load, so silent truncation or corruption
  surfaces as :class:`CheckpointError`, never as a garbage resume;
* **ring-retained**: with ``keep > 1`` every save also lands in a
  retention ring (``<path>.g<generation>`` siblings, pruned oldest
  first), and :func:`load_checkpoint_resilient` falls back to the newest
  verifiable predecessor when the canonical envelope is corrupt --
  one flipped bit no longer bricks a campaign's resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import socket
import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.gp.fitness import GMRFitnessEvaluator
from repro.gp.individual import Individual

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.gp.engine import GenerationRecord, RunResult

#: Format version encoded in the file magic; bump on layout changes.
#: v2 (PR 5): adds ``trace_seq`` and preserves cache hit/miss/eviction
#: counters through the evaluator pickle round-trip.
#: v3 (PR 6): adds ``domain`` and ``domain_spec_hash`` so resuming under
#: the wrong domain -- or under a domain whose knowledge spec changed
#: since the snapshot -- fails loudly instead of silently continuing a
#: run over a different search space.
#: v4 (PR 8): adds ``stop_reason`` so a budget- or signal-stopped run's
#: final envelope records why it stopped.
CHECKPOINT_VERSION = 4

#: Versions this build still reads; older envelopes are migrated in
#: memory (missing fields get their v1-era defaults, e.g. a zero trace
#: offset; pre-domain envelopes default to the ``river`` domain with no
#: spec hash; pre-governor envelopes have no stop reason) instead of
#: raising.
COMPATIBLE_VERSIONS = (1, 2, 3, 4)

#: File magics: 7 identifying bytes plus the format version byte.
_CHECKPOINT_MAGIC = b"GMRCKPT" + bytes([CHECKPOINT_VERSION])
_RESULT_MAGIC = b"GMRRSLT" + bytes([CHECKPOINT_VERSION])

_DIGEST_BYTES = hashlib.sha256().digest_size


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or applied."""


@dataclass
class RunCheckpoint:
    """Everything generation ``generation`` needs to continue a run.

    Attributes:
        seed: The run's RNG seed (resume re-adopts it).
        generation: Index of the last completed generation.
        elapsed: Wall-clock seconds spent up to this snapshot, summed
            across resumed segments.
        config_repr: ``repr`` of the :class:`~repro.gp.config.GMRConfig`
            that produced the snapshot; resume refuses a different one.
        rng_state: ``random.Random.getstate()`` of the run RNG.
        population: The evaluated population of ``generation``.
        best: The champion tracked so far.
        history: Per-generation records up to and including ``generation``.
        evaluator: The run's evaluator with its tree cache, statistics and
            ES ``best_prev_full`` marker (compiled functions are dropped on
            pickling and rebuilt lazily, exactly as in the parallel layer).
        trace_seq: Trace sequence number at snapshot time; a resumed run
            fast-forwards its tracer here so a stitched JSONL trace keeps
            strictly increasing sequence numbers across process lifetimes.
        domain: Name of the problem domain the run was revising (see
            :mod:`repro.domains`); resume refuses a different one.
        domain_spec_hash: The registered domain's
            :meth:`~repro.domains.registry.DomainSpec.spec_hash` at save
            time, or ``""`` when the domain was not registered (hand-built
            engines).  Resume refuses a checkpoint whose domain spec has
            changed since the snapshot: the search space is different, so
            "continuing" would silently produce a run neither spec
            describes.
        stop_reason: Why the run stopped when this envelope was written
            (``budget:*`` / ``signal:*``, see :mod:`repro.gp.governor`),
            or None for an ordinary cadence snapshot.  Informational:
            resume behaves identically either way -- the resuming
            engine's own governor decides whether to continue.
    """

    seed: int
    generation: int
    elapsed: float
    config_repr: str
    rng_state: Any
    population: list[Individual]
    best: Individual
    history: list["GenerationRecord"]
    evaluator: GMRFitnessEvaluator
    version: int = field(default=CHECKPOINT_VERSION)
    trace_seq: int = 0
    domain: str = "river"
    domain_spec_hash: str = ""
    stop_reason: str | None = None


def _sweep_stale_temps(
    path: str | os.PathLike[str], keep: str | None = None
) -> None:
    """Remove leftover ``<path>.tmp.*`` siblings from dead writers.

    A process killed between writing its temp file and the rename leaves
    a ``*.tmp.<pid>`` orphan that no ``finally`` block will ever reach;
    every save sweeps them so they cannot accumulate over a long
    campaign.  Only temps of *this* path are touched (per-seed files
    have one writer at a time, so anything matching is stale), and the
    current writer's own temp (``keep``) is spared.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    prefix = os.path.basename(path) + ".tmp."
    try:
        names = sorted(os.listdir(directory))
    except OSError:  # pragma: no cover - directory being created/removed
        return
    for name in names:
        if not name.startswith(prefix):
            continue
        stale = os.path.join(directory, name)
        if keep is not None and stale == keep:
            continue
        try:
            os.remove(stale)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


def _atomic_write(path: str | os.PathLike[str], blob: bytes) -> None:
    """Write ``blob`` to ``path`` via a sibling temp file and rename."""
    directory = os.path.dirname(os.fspath(path)) or "."
    temp_path = f"{os.fspath(path)}.tmp.{os.getpid()}"
    _sweep_stale_temps(path, keep=temp_path)
    try:
        with open(temp_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except OSError as exc:
        raise CheckpointError(
            f"could not write checkpoint to {path!s}: {exc}"
        ) from exc
    finally:
        if os.path.exists(temp_path):  # rename failed; do not litter
            try:
                os.remove(temp_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    # Make the rename itself durable.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - fsync on dirs may be unsupported
        pass
    finally:
        os.close(dir_fd)


def _encode(obj: object, magic: bytes) -> bytes:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    return magic + digest + payload


def _dump(obj: object, path: str | os.PathLike[str], magic: bytes) -> None:
    _atomic_write(path, _encode(obj, magic))


def _load(path: str | os.PathLike[str], magic: bytes, kind: str) -> Any:
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise CheckpointError(f"could not read {kind} {path!s}: {exc}") from exc
    header = len(magic) + _DIGEST_BYTES
    if len(blob) < header or blob[: len(magic) - 1] != magic[:-1]:
        raise CheckpointError(f"{path!s} is not a {kind} file")
    if blob[len(magic) - 1] not in COMPATIBLE_VERSIONS:
        raise CheckpointError(
            f"{path!s} uses {kind} format version {blob[len(magic) - 1]}, "
            f"this build reads versions {COMPATIBLE_VERSIONS}"
        )
    digest = blob[len(magic) : header]
    payload = blob[header:]
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError(f"{path!s} failed its integrity check (corrupt?)")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"could not unpickle {kind} {path!s}: {exc}") from exc


def _ring_file(path: str | os.PathLike[str], generation: int) -> str:
    """Retention-ring sibling of ``path`` for ``generation``."""
    return f"{os.fspath(path)}.g{generation:09d}"


def ring_files(path: str | os.PathLike[str]) -> list[str]:
    """Existing retention-ring siblings of ``path``, newest first."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    prefix = os.path.basename(path) + ".g"
    entries: list[tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        if not name.startswith(prefix):
            continue
        suffix = name[len(prefix):]
        if not suffix.isdigit():
            continue
        entries.append((int(suffix), os.path.join(directory, name)))
    entries.sort(reverse=True)
    return [ring_path for __, ring_path in entries]


def _prune_ring(path: str | os.PathLike[str], keep: int) -> None:
    """Deterministically drop ring entries beyond the newest ``keep``."""
    retain = keep if keep > 1 else 0
    for stale in ring_files(path)[retain:]:
        try:
            os.remove(stale)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


def save_checkpoint(
    checkpoint: RunCheckpoint, path: str | os.PathLike[str], keep: int = 1
) -> None:
    """Atomically persist a :class:`RunCheckpoint` to ``path``.

    With ``keep > 1`` the envelope is also copied into the retention
    ring (a ``<path>.g<generation>`` sibling), and the ring is pruned to
    the newest ``keep`` entries -- so the newest ``keep`` *distinct*
    generation snapshots survive on disk and
    :func:`load_checkpoint_resilient` can fall back through them when
    the canonical file is corrupted.  ``keep <= 1`` keeps the historical
    single-file behaviour and prunes any ring left by a larger previous
    setting.
    """
    blob = _encode(checkpoint, _CHECKPOINT_MAGIC)
    _atomic_write(path, blob)
    if keep > 1:
        _atomic_write(_ring_file(path, checkpoint.generation), blob)
    _prune_ring(path, keep)


def load_checkpoint(path: str | os.PathLike[str]) -> RunCheckpoint:
    """Load and verify a checkpoint written by :func:`save_checkpoint`.

    Raises:
        CheckpointError: Unreadable file, wrong magic, unsupported
            version, failed integrity check, or non-checkpoint payload.
    """
    checkpoint = _load(path, _CHECKPOINT_MAGIC, "checkpoint")
    if not isinstance(checkpoint, RunCheckpoint):
        raise CheckpointError(
            f"{path!s} holds a {type(checkpoint).__name__}, not a RunCheckpoint"
        )
    if checkpoint.version not in COMPATIBLE_VERSIONS:
        raise CheckpointError(
            f"{path!s} holds checkpoint version {checkpoint.version}, "
            f"this build reads versions {COMPATIBLE_VERSIONS}"
        )
    if checkpoint.version < CHECKPOINT_VERSION:
        _migrate_checkpoint(checkpoint)
    return checkpoint


def load_checkpoint_resilient(
    path: str | os.PathLike[str]
) -> RunCheckpoint:
    """Load ``path``, falling back through its retention ring.

    When the canonical envelope fails verification (magic/SHA-256
    mismatch, truncation, unreadable file), each ring sibling is tried
    newest first and the first verifiable one is returned with a
    warning -- the run resumes from the newest surviving snapshot
    instead of being bricked by one corrupt file.  When nothing
    verifiable survives (including the ``keep <= 1`` no-ring case), the
    canonical file's original :class:`CheckpointError` is raised, so
    callers keep their loud-failure contract.
    """
    try:
        return load_checkpoint(path)
    except CheckpointError as primary:
        for candidate in ring_files(path):
            try:
                checkpoint = load_checkpoint(candidate)
            except CheckpointError:
                continue
            warnings.warn(
                f"checkpoint {os.fspath(path)!s} failed verification "
                f"({primary}); resuming from retention-ring snapshot "
                f"{candidate!s} (generation {checkpoint.generation})",
                RuntimeWarning,
                stacklevel=2,
            )
            return checkpoint
        raise


def _migrate_checkpoint(checkpoint: RunCheckpoint) -> None:
    """Upgrade an older envelope in memory (v1/v2/v3 -> v4).

    v1 predates the observability layer: there was no trace offset, and
    the evaluator's compiled-cache counters were zeroed by its pickle
    round-trip, so the honest migration is zero defaults.  (The
    evaluator- and cache-level attribute gaps are already healed by
    their own ``__setstate__`` hooks during unpickling.)

    v1/v2 predate the domain registry: every run revised the river
    model, so pre-domain envelopes migrate to ``domain="river"`` with an
    empty spec hash -- resume then skips the spec comparison (there is
    no save-time hash to compare against) but still refuses to resume
    the snapshot under a non-river domain.

    v1-v3 predate the resource governor; their envelopes were only ever
    written on the cadence, so the honest ``stop_reason`` is None.
    """
    if not hasattr(checkpoint, "trace_seq"):
        checkpoint.trace_seq = 0
    if not hasattr(checkpoint, "domain"):
        checkpoint.domain = "river"
    if not hasattr(checkpoint, "domain_spec_hash"):
        checkpoint.domain_spec_hash = ""
    if not hasattr(checkpoint, "stop_reason"):
        checkpoint.stop_reason = None
    checkpoint.version = CHECKPOINT_VERSION


#: Advisory lockfile name inside a claimed checkpoint directory.
CLAIM_FILENAME = ".claim"


class CheckpointLockError(CheckpointError):
    """A checkpoint directory is claimed by another live writer."""


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a pid on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # e.g. EPERM: someone else's live process
        return True
    return True


def _read_claim(path: str) -> tuple[bytes, dict] | None:
    """The claim file's raw bytes and parsed payload, or None if gone.

    An unreadable or torn payload (a claimant died between creating the
    file and writing it) parses to ``{}``, which the staleness rule
    treats as stale.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError:
        return None
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        payload = {}
    if not isinstance(payload, dict):
        payload = {}
    return raw, payload


def _claim_is_stale(payload: dict, host: str) -> bool:
    """The stale-claim takeover rule.

    A claim is stale when its payload is torn/unreadable, or when it
    was written by a process *on this host* that is no longer alive
    (the SIGKILLed-server case).  A claim from another host is never
    treated as stale -- liveness cannot be verified across hosts, so
    the conservative answer is "still owned".
    """
    pid = payload.get("pid")
    if not isinstance(pid, int) or isinstance(pid, bool):
        return True
    if payload.get("host") != host:
        return False
    return not _pid_alive(pid)


@dataclass
class CheckpointClaim:
    """An advisory ownership claim on one checkpoint directory.

    Holding the claim means this process is the directory's only
    writer: campaign resume, ``_atomic_write`` renames, and
    retention-ring pruning are all safe from interleaving with a
    second resumer.  The claim is identified by a random token, not
    the pid, so two threads of one process still conflict (each job
    must claim its own directory).  Release with :meth:`release`;
    claims left behind by a killed process are taken over by the next
    claimant via the stale rule in :func:`claim_checkpoint_dir`.
    """

    directory: str
    token: str
    pid: int
    host: str

    @property
    def path(self) -> str:
        return os.path.join(self.directory, CLAIM_FILENAME)

    def payload(self) -> bytes:
        record = {"host": self.host, "pid": self.pid, "token": self.token}
        return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")

    def held(self) -> bool:
        """Whether the directory's claim file still carries our token."""
        current = _read_claim(self.path)
        return current is not None and current[1].get("token") == self.token

    def release(self) -> None:
        """Drop the claim if it is still ours (idempotent, best-effort)."""
        if not self.held():
            return
        try:
            os.remove(self.path)
        except OSError:  # pragma: no cover - already gone
            pass


def _write_claim_file(fd: int, blob: bytes) -> None:
    with os.fdopen(fd, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())


def _try_claim(claim: CheckpointClaim) -> bool:
    """One attempt to take the directory; False means a live owner.

    The protocol is append-free and rename-safe:

    1. ``O_CREAT | O_EXCL`` creates the claim file atomically; exactly
       one racing claimant wins.
    2. An existing claim is read and judged by the stale rule.  A live
       owner ends the attempt.
    3. A stale claim is removed *only if its bytes are unchanged* since
       we judged it (so we never remove a fresh claim that replaced it
       in between), and the loop returns to step 1 -- where, again,
       exactly one racing taker-over wins the ``O_EXCL`` create.
    """
    path = claim.path
    blob = claim.payload()
    while True:
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            current = _read_claim(path)
            if current is None:
                continue  # owner released between our checks; try again
            raw, payload = current
            if payload.get("token") == claim.token:
                return True  # already ours (retried after a torn write)
            if not _claim_is_stale(payload, claim.host):
                return False
            verify = _read_claim(path)
            if verify is None or verify[0] != raw:
                continue  # claim changed while we judged it; re-judge
            try:
                os.remove(path)
            except FileNotFoundError:  # pragma: no cover - lost the race
                pass
            continue
        _write_claim_file(fd, blob)
        return True


def claim_checkpoint_dir(
    directory: str | os.PathLike[str],
    wait: float = 0.0,
    poll_interval: float = 0.05,
) -> CheckpointClaim:
    """Claim exclusive write ownership of a checkpoint directory.

    Two processes resuming the same checkpoint directory -- a double
    job submission, or a restarted server racing a still-dying worker
    -- would interleave ``_atomic_write`` renames and retention-ring
    pruning.  The claim is an advisory lockfile (``.claim``) holding
    ``{host, pid, token}``; a second claimant is refused while the
    owner is alive, and takes over when the owner is provably dead on
    this host (or the claim file is torn) -- the stale-claim takeover
    rule that lets a relaunched server resume the jobs its SIGKILLed
    predecessor was running.

    Args:
        directory: Checkpoint directory (created if missing).
        wait: Seconds to keep retrying against a live owner before
            giving up (0 refuses immediately).  Waiting covers the
            restarted-server-racing-a-dying-worker window: the old
            owner's release or death is picked up on the next poll.
        poll_interval: Delay between retries while waiting.

    Returns:
        The held :class:`CheckpointClaim`; call ``release()`` when done.

    Raises:
        CheckpointLockError: The directory is claimed by a live owner
            (after ``wait`` seconds, if waiting).
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    claim = CheckpointClaim(
        directory=directory,
        token=os.urandom(16).hex(),
        pid=os.getpid(),
        host=socket.gethostname(),
    )
    deadline: float | None = None
    while True:
        if _try_claim(claim):
            return claim
        if wait <= 0:
            break
        if deadline is None:
            deadline = time.monotonic() + wait
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        time.sleep(min(poll_interval, remaining))
    current = _read_claim(claim.path)
    owner = current[1] if current else {}
    raise CheckpointLockError(
        f"checkpoint directory {directory!s} is claimed by a live writer "
        f"(host={owner.get('host')!r}, pid={owner.get('pid')!r}); "
        "refusing to resume it concurrently -- interleaved writers "
        "corrupt the retention ring. Stop the other process, or wait "
        "for it to release the claim."
    )


def save_result(result: "RunResult", path: str | os.PathLike[str]) -> None:
    """Atomically persist a completed run's result (campaign resume)."""
    _dump(result, path, _RESULT_MAGIC)


def load_result(path: str | os.PathLike[str]) -> "RunResult":
    """Load a result written by :func:`save_result` (integrity-checked)."""
    from repro.gp.engine import RunResult

    result = _load(path, _RESULT_MAGIC, "run result")
    if not isinstance(result, RunResult):
        raise CheckpointError(
            f"{path!s} holds a {type(result).__name__}, not a RunResult"
        )
    return result


def checkpoint_file(directory: str | os.PathLike[str], seed: int) -> str:
    """Canonical mid-run checkpoint path for ``seed`` under ``directory``."""
    return os.path.join(os.fspath(directory), f"run-{seed}.ckpt")


def result_file(directory: str | os.PathLike[str], seed: int) -> str:
    """Canonical completed-result path for ``seed`` under ``directory``."""
    return os.path.join(os.fspath(directory), f"run-{seed}.result")
