"""The generational model-revision loop (paper Figure 5).

Each generation: elites are preserved; the rest of the next population is
produced by tournament selection plus one of the four reproduction
operators (crossover, subtree mutation, Gaussian mutation, replication);
offspring then undergo stochastic hill-climbing local search.  Prior
knowledge flows through every stage -- the seed alpha-tree anchors
initialisation, beta-trees constrain structural revisions, and parameter
priors govern Gaussian mutation.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.dynamics.task import ModelingTask
from repro.gp.config import GMRConfig
from repro.gp.fitness import EvaluationStats, GMRFitnessEvaluator
from repro.gp.individual import Individual
from repro.gp.init import initial_population
from repro.gp.knowledge import PriorKnowledge, build_grammar
from repro.gp.local_search import hill_climb
from repro.gp.operators import (
    crossover,
    gaussian_mutation,
    replication,
    subtree_mutation,
)
from repro.gp.selection import best_of, elites, tournament_select
from repro.tag.grammar import TagGrammar

#: Optional per-generation progress callback ``(generation, record)``.
ProgressFn = Callable[[int, "GenerationRecord"], None]


@dataclass(frozen=True)
class GenerationRecord:
    """Statistics of one generation."""

    generation: int
    best_fitness: float
    mean_fitness: float
    best_size: int
    best_fully_evaluated: bool
    evaluations_so_far: int


@dataclass
class RunResult:
    """Outcome of one GMR run."""

    best: Individual
    history: list[GenerationRecord]
    stats: EvaluationStats
    seed: int
    elapsed: float

    @property
    def best_fitness(self) -> float:
        if self.best.fitness is None:
            return float("inf")
        return self.best.fitness


@dataclass
class GMREngine:
    """Knowledge-guided genetic model revision.

    Attributes:
        knowledge: Prior knowledge (seed process, revisions, priors).
        task: The modeling task to fit.
        config: Engine configuration.
        grammar: The TAG compiled from ``knowledge`` (built if omitted).
    """

    knowledge: PriorKnowledge
    task: ModelingTask
    config: GMRConfig = field(default_factory=GMRConfig)
    grammar: TagGrammar | None = None
    use_local_search: bool = True

    def __post_init__(self) -> None:
        if self.grammar is None:
            self.grammar = build_grammar(self.knowledge)
        if tuple(self.knowledge.state_names) != tuple(self.task.state_names):
            raise ValueError(
                "knowledge and task disagree on state names: "
                f"{self.knowledge.state_names} vs {self.task.state_names}"
            )

    def make_evaluator(self) -> GMRFitnessEvaluator:
        return GMRFitnessEvaluator(task=self.task, config=self.config)

    def run(
        self,
        seed: int = 0,
        progress: ProgressFn | None = None,
        evaluator: GMRFitnessEvaluator | None = None,
    ) -> RunResult:
        """Execute one full evolutionary run.

        Args:
            seed: RNG seed (runs are deterministic given a seed).
            progress: Optional callback invoked after each generation.
            evaluator: Custom evaluator (e.g. with different ES settings);
                a fresh one is created when omitted.
        """
        config = self.config
        rng = random.Random(seed)
        if evaluator is None:
            evaluator = self.make_evaluator()
        started = time.perf_counter()

        population = initial_population(
            self.grammar, self.knowledge, config, rng
        )
        for individual in population:
            evaluator.evaluate(individual)

        best = self._track_best(None, population)
        history: list[GenerationRecord] = []
        record = self._record(0, population, evaluator)
        history.append(record)
        if progress is not None:
            progress(0, record)

        for generation in range(1, config.max_generations + 1):
            sigma_scale = config.sigma_scale(generation)
            population = self._next_generation(
                population, evaluator, rng, sigma_scale
            )
            best = self._track_best(best, population)
            record = self._record(generation, population, evaluator)
            history.append(record)
            if progress is not None:
                progress(generation, record)

        elapsed = time.perf_counter() - started
        return RunResult(
            best=best,
            history=history,
            stats=evaluator.stats,
            seed=seed,
            elapsed=elapsed,
        )

    def _next_generation(
        self,
        population: list[Individual],
        evaluator: GMRFitnessEvaluator,
        rng: random.Random,
        sigma_scale: float,
    ) -> list[Individual]:
        config = self.config
        ops = config.operators
        next_population: list[Individual] = elites(population, config.elite_size)

        def select() -> Individual:
            return tournament_select(population, config.tournament_size, rng)

        while len(next_population) < config.population_size:
            roll = rng.random()
            offspring: list[Individual] = []
            if roll < ops.crossover:
                pair = crossover(select(), select(), self.grammar, config, rng)
                if pair is None:
                    offspring = [replication(select())]
                else:
                    offspring = list(pair)
            elif roll < ops.crossover + ops.subtree_mutation:
                child = subtree_mutation(select(), self.grammar, config, rng)
                offspring = [child if child is not None else replication(select())]
            elif roll < ops.crossover + ops.subtree_mutation + ops.gaussian_mutation:
                offspring = [
                    gaussian_mutation(
                        select(), self.knowledge, config, rng, sigma_scale
                    )
                ]
            else:
                offspring = [replication(select())]

            for child in offspring:
                if len(next_population) >= config.population_size:
                    break
                if child.fitness is None:
                    evaluator.evaluate(child)
                if self.use_local_search and config.local_search_steps > 0:
                    child = hill_climb(
                        child,
                        self.grammar,
                        config,
                        evaluator.evaluate,
                        rng,
                        knowledge=self.knowledge,
                        sigma_scale=sigma_scale,
                    )
                next_population.append(child)
        return next_population

    @staticmethod
    def _track_best(
        best: Individual | None, population: list[Individual]
    ) -> Individual:
        candidate = best_of(population)
        if best is None or (
            candidate.fitness is not None
            and candidate.fitness < (best.fitness or float("inf"))
        ):
            clone = candidate.copy()
            clone.fitness = candidate.fitness
            clone.fully_evaluated = candidate.fully_evaluated
            return clone
        return best

    @staticmethod
    def _record(
        generation: int,
        population: list[Individual],
        evaluator: GMRFitnessEvaluator,
    ) -> GenerationRecord:
        fitnesses = [
            individual.fitness
            for individual in population
            if individual.fitness is not None
        ]
        champion = best_of(population)
        return GenerationRecord(
            generation=generation,
            best_fitness=champion.fitness if champion.fitness is not None else float("inf"),
            mean_fitness=sum(fitnesses) / len(fitnesses) if fitnesses else float("inf"),
            best_size=champion.size,
            best_fully_evaluated=champion.fully_evaluated,
            evaluations_so_far=evaluator.stats.evaluations,
        )


def run_many(
    engine: GMREngine,
    n_runs: int,
    base_seed: int = 0,
) -> list[RunResult]:
    """Execute several independent runs with consecutive seeds."""
    return [engine.run(seed=base_seed + index) for index in range(n_runs)]
