"""The generational model-revision loop (paper Figure 5).

Each generation: elites are preserved; the rest of the next population is
produced by tournament selection plus one of the four reproduction
operators (crossover, subtree mutation, Gaussian mutation, replication);
offspring then undergo stochastic hill-climbing local search.  Prior
knowledge flows through every stage -- the seed alpha-tree anchors
initialisation, beta-trees constrain structural revisions, and parameter
priors govern Gaussian mutation.
"""

from __future__ import annotations

import math
import os
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Callable, ContextManager

from repro.dynamics.task import ModelingTask
from repro.gp.checkpoint import (
    CheckpointError,
    RunCheckpoint,
    load_checkpoint_resilient,
    save_checkpoint,
)
from repro.gp.config import GMRConfig
from repro.gp.fitness import EvaluationStats, GMRFitnessEvaluator
from repro.gp.governor import RunGovernor
from repro.gp.individual import Individual
from repro.gp.init import initial_population
from repro.gp.knowledge import PriorKnowledge, build_grammar
from repro.gp.local_search import hill_climb
from repro.gp.operators import (
    crossover,
    gaussian_mutation,
    gaussian_mutation_best_of,
    replication,
    subtree_mutation,
)
from repro.gp.parallel import (
    EvaluationBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.gp.selection import best_of, elites, tournament_select
from repro.obs.profile import PhaseProfile
from repro.obs.trace import JsonlSink, Tracer
from repro.tag.grammar import TagGrammar

#: Optional per-generation progress callback ``(generation, record)``.
ProgressFn = Callable[[int, "GenerationRecord"], None]


@dataclass(frozen=True)
class GenerationRecord:
    """Statistics of one generation."""

    generation: int
    best_fitness: float
    mean_fitness: float
    best_size: int
    best_fully_evaluated: bool
    evaluations_so_far: int


@dataclass
class RunResult:
    """Outcome of one GMR run.

    ``stop_reason`` is None for a run that exhausted its configured
    generations; a governed run that stopped early (budget ceiling,
    cooperative signal shutdown) carries the machine-readable reason
    (``budget:*`` / ``signal:*``) and its ``history``/``best``/``stats``
    describe the partial-but-valid prefix actually executed.
    """

    best: Individual
    history: list[GenerationRecord]
    stats: EvaluationStats
    seed: int
    elapsed: float
    stop_reason: str | None = None

    @property
    def best_fitness(self) -> float:
        if self.best.fitness is None:
            return float("inf")
        return self.best.fitness


@dataclass
class GMREngine:
    """Knowledge-guided genetic model revision.

    Attributes:
        knowledge: Prior knowledge (seed process, revisions, priors).
        task: The modeling task to fit.
        config: Engine configuration.
        grammar: The TAG compiled from ``knowledge`` (built if omitted).
    """

    knowledge: PriorKnowledge
    task: ModelingTask
    config: GMRConfig = field(default_factory=GMRConfig)
    grammar: TagGrammar | None = None
    use_local_search: bool = True
    #: Offspring-evaluation backend for batched mode
    #: (``config.eval_batch_size > 0``); built from the config when None.
    eval_backend: EvaluationBackend | None = None
    #: Optional tracer receiving run/generation/checkpoint events.
    #: Process-local (sinks hold file handles); dropped on pickling.
    tracer: Tracer | None = None
    #: When set (and no explicit ``tracer`` is attached), each run writes
    #: a JSONL trace to ``<trace_dir>/run-<seed>.jsonl``.  Plain path, so
    #: it survives pickling into pool workers -- campaign runs trace
    #: themselves from inside their worker processes.
    trace_dir: str | os.PathLike[str] | None = None
    #: Optional resource governor (:mod:`repro.gp.governor`): budget
    #: ceilings checked at generation boundaries, cooperative
    #: SIGTERM/SIGINT shutdown, and heartbeat trace events.  Lives on
    #: the engine (not the config) so a budget-stopped checkpoint can be
    #: resumed under a larger budget without tripping resume's
    #: ``config_repr`` equality check.  Picklable; the runtime stop flag
    #: is dropped on pickling (see ``RunGovernor.__getstate__``).
    governor: RunGovernor | None = None
    #: Default per-generation progress callback, used when ``run()`` is
    #: not given an explicit one.  Campaign paths (``run_campaign`` ->
    #: ``_run_one``) never thread a callback through, so this is how a
    #: campaign owner -- e.g. the serve layer's pacing hook -- observes
    #: generations.  Observational only; like the tracer it is dropped
    #: on pickling (callbacks may not pickle, and worker processes must
    #: not inherit the parent's hook).
    progress: ProgressFn | None = None

    def __post_init__(self) -> None:
        if self.grammar is None:
            self.grammar = build_grammar(self.knowledge)
        if tuple(self.knowledge.state_names) != tuple(self.task.state_names):
            raise ValueError(
                "knowledge and task disagree on state names: "
                f"{self.knowledge.state_names} vs {self.task.state_names}"
            )

    def __getstate__(self) -> dict:
        # Tracers hold sink file handles; worker processes build their
        # own from ``trace_dir``.
        state = dict(self.__dict__)
        state["tracer"] = None
        state["progress"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("tracer", None)
        self.__dict__.setdefault("trace_dir", None)
        self.__dict__.setdefault("governor", None)
        self.__dict__.setdefault("progress", None)

    def make_evaluator(self) -> GMRFitnessEvaluator:
        return GMRFitnessEvaluator(task=self.task, config=self.config)

    @classmethod
    def for_domain(
        cls,
        name: str,
        config: GMRConfig | None = None,
        period: str = "train",
        mini: bool = False,
        **kwargs,
    ) -> "GMREngine":
        """Build an engine for a registered domain (see :mod:`repro.domains`).

        Resolves knowledge and task from the registered
        :class:`~repro.domains.registry.DomainSpec` and stamps the
        domain name into the config, so checkpoints written by the run
        carry it.

        Args:
            name: Registered domain name (``river``, ``sir``, ...).
            config: Engine configuration; its ``domain`` field is
                overwritten with ``name``.
            period: Task period (``train``/``test``/``all``).
            mini: Use the domain's small conformance task instead of the
                standard one.
            **kwargs: Forwarded to the :class:`GMREngine` constructor
                (``trace_dir``, ``eval_backend``, ...).

        Raises:
            DomainNotFoundError: ``name`` is not registered.
        """
        from repro.domains.registry import get_domain

        spec = get_domain(name)
        config = config if config is not None else GMRConfig()
        if config.domain != spec.name:
            config = replace(config, domain=spec.name)
        task = spec.mini_task(period) if mini else spec.make_task(period)
        return cls(spec.make_knowledge(), task, config, **kwargs)

    def _check_checkpoint_domain(self, checkpoint: RunCheckpoint) -> None:
        """Refuse to resume under the wrong domain or a changed spec.

        ``getattr`` defaults mirror the v2->v3 migration because
        ``resume_from`` may be a :class:`RunCheckpoint` instance that
        never went through :func:`~repro.gp.checkpoint.load_checkpoint`.
        """
        saved_domain = getattr(checkpoint, "domain", "river")
        if saved_domain != self.config.domain:
            raise CheckpointError(
                f"checkpoint was written for domain {saved_domain!r}, "
                f"cannot resume it under domain {self.config.domain!r}"
            )
        saved_hash = getattr(checkpoint, "domain_spec_hash", "")
        if not saved_hash:
            return  # pre-domain or hand-built engine: nothing to compare
        current_hash = self._domain_spec_hash()
        if current_hash and current_hash != saved_hash:
            raise CheckpointError(
                f"domain {saved_domain!r} spec changed since the "
                "checkpoint was written (spec hash "
                f"{saved_hash[:12]}.. != {current_hash[:12]}..): resuming "
                "would continue the run over a different search space. "
                "Restore the original domain spec, or restart the run "
                "fresh under the new one."
            )

    def _domain_spec_hash(self) -> str:
        """Current spec hash of ``config.domain`` ('' when unregistered).

        Memoised per engine: the hash walks the domain's knowledge
        bundle, and checkpoint cadences of 1 would otherwise rebuild it
        every generation.
        """
        cached = self.__dict__.get("_cached_domain_hash")
        if cached is None:
            from repro.domains.registry import domain_spec_hash

            cached = domain_spec_hash(self.config.domain)
            self.__dict__["_cached_domain_hash"] = cached
        return cached

    def run(
        self,
        seed: int | None = None,
        progress: ProgressFn | None = None,
        evaluator: GMRFitnessEvaluator | None = None,
        resume_from: RunCheckpoint | str | os.PathLike[str] | None = None,
        checkpoint_path: str | os.PathLike[str] | None = None,
    ) -> RunResult:
        """Execute one full evolutionary run.

        Args:
            seed: RNG seed (runs are deterministic given a seed).
                Defaults to 0 for fresh runs; a resumed run adopts its
                checkpoint's seed, and passing a conflicting seed raises.
            progress: Optional callback invoked after each generation
                (defaults to the engine-level :attr:`progress` hook).
            evaluator: Custom evaluator (e.g. with different ES settings);
                a fresh one is created when omitted.  Incompatible with
                ``resume_from`` (the checkpoint carries its evaluator).
            resume_from: A :class:`~repro.gp.checkpoint.RunCheckpoint`
                (or path to one) to continue from.  The resumed run
                replays the remaining generations bit-identically to the
                uninterrupted run: same ``best_fitness`` history, same
                champion.
            checkpoint_path: Where to snapshot the run every
                ``config.checkpoint_every`` generations (atomic
                write-then-rename; no-op when the cadence is 0).

        Raises:
            CheckpointError: ``resume_from`` is unreadable, corrupt, was
                written under a different configuration, or conflicts
                with an explicit ``seed``/``evaluator``.
        """
        config = self.config
        started = time.perf_counter()
        if progress is None:
            progress = self.progress

        if resume_from is not None:
            if evaluator is not None:
                raise CheckpointError(
                    "pass either resume_from or evaluator, not both: "
                    "the checkpoint carries its own evaluator state"
                )
            checkpoint = (
                resume_from
                if isinstance(resume_from, RunCheckpoint)
                else load_checkpoint_resilient(resume_from)
            )
            if checkpoint.config_repr != repr(config):
                raise CheckpointError(
                    "checkpoint was written under a different engine "
                    f"configuration:\n  checkpoint: {checkpoint.config_repr}"
                    f"\n  engine:     {config!r}"
                )
            self._check_checkpoint_domain(checkpoint)
            if seed is not None and seed != checkpoint.seed:
                raise CheckpointError(
                    f"checkpoint holds seed {checkpoint.seed}, "
                    f"cannot resume it as seed {seed}"
                )
            seed = checkpoint.seed
            rng = random.Random()
            rng.setstate(checkpoint.rng_state)
            evaluator = checkpoint.evaluator
            population: list[Individual] | None = checkpoint.population
            best: Individual | None = checkpoint.best
            history = list(checkpoint.history)
            start_generation = checkpoint.generation
            elapsed_before = checkpoint.elapsed
            resumed = True
            trace_seq = checkpoint.trace_seq
        else:
            if seed is None:
                seed = 0
            rng = random.Random(seed)
            if evaluator is None:
                evaluator = self.make_evaluator()
            population = None
            best = None
            history = []
            start_generation = 0
            elapsed_before = 0.0
            resumed = False
            trace_seq = 0

        tracer, owns_tracer = self._resolve_tracer(seed)
        profile: PhaseProfile | None = None
        run_cm: ContextManager[int] = nullcontext(-1)
        if tracer is not None:
            tracer.advance_to(trace_seq)
            evaluator.tracer = tracer
            profile = PhaseProfile()
            run_cm = tracer.span(
                "run",
                seed=seed,
                resumed=resumed,
                start_generation=start_generation,
            )
        governor = self.governor
        signal_cm: ContextManager[object] = (
            governor.install() if governor is not None else nullcontext()
        )
        stop_reason: str | None = None
        try:
            with signal_cm, run_cm as run_span:
                if not resumed:
                    if config.strict_validate:
                        self._lint_artifacts()
                    if config.static_triage:
                        self._triage_seed()
                    population = initial_population(
                        self.grammar, self.knowledge, config, rng
                    )
                    if config.strict_validate:
                        self._lint_offspring(population, "initial population")
                    # The seed population is one big cohort with no RNG use
                    # between evaluations, so the batched kernels can
                    # integrate it structure-group by structure-group with
                    # identical results.
                    with self._phase(profile, "evaluate"):
                        evaluator.evaluate_batch(population)

                    best = self._track_best(None, population)
                    record = self._record(0, population, evaluator)
                    history.append(record)
                    with self._phase(profile, "checkpoint"):
                        self._maybe_checkpoint(
                            checkpoint_path, seed, 0, rng, population, best,
                            history, evaluator, started, elapsed_before,
                            tracer,
                        )
                    self._trace_generation(tracer, profile, record)
                    if progress is not None:
                        progress(0, record)
                assert population is not None and best is not None

                # Generation boundaries are the governor's deterministic
                # decision points.  A resumed run re-checks at its start
                # generation (without a duplicate heartbeat) so resuming
                # under an already-exhausted budget stops before doing a
                # generation of over-budget work.
                stop_reason = self._governor_tick(
                    governor, tracer, evaluator, start_generation if resumed
                    else 0, seed, rng, population, best, history,
                    checkpoint_path, started, elapsed_before,
                    heartbeat=not resumed,
                )

                for generation in range(
                    start_generation + 1, config.max_generations + 1
                ):
                    if stop_reason is not None:
                        break
                    sigma_scale = config.sigma_scale(generation)
                    population = self._next_generation(
                        population, evaluator, rng, sigma_scale, profile
                    )
                    best = self._track_best(best, population)
                    record = self._record(generation, population, evaluator)
                    history.append(record)
                    with self._phase(profile, "checkpoint"):
                        self._maybe_checkpoint(
                            checkpoint_path, seed, generation, rng,
                            population, best, history, evaluator, started,
                            elapsed_before, tracer,
                        )
                    self._trace_generation(tracer, profile, record)
                    if progress is not None:
                        progress(generation, record)
                    stop_reason = self._governor_tick(
                        governor, tracer, evaluator, generation, seed, rng,
                        population, best, history, checkpoint_path, started,
                        elapsed_before,
                    )

                elapsed = elapsed_before + (time.perf_counter() - started)
                if tracer is not None:
                    end_fields: dict = dict(
                        best_fitness=(
                            best.fitness
                            if best.fitness is not None
                            else math.inf
                        ),
                        generations=len(history),
                        evaluations=evaluator.stats.evaluations,
                    )
                    if stop_reason is not None:
                        end_fields["stop_reason"] = stop_reason
                    tracer.end_span_fields("run", run_span, **end_fields)
        finally:
            if tracer is not None:
                evaluator.tracer = None
                if owns_tracer:
                    tracer.close()
        return RunResult(
            best=best,
            history=history,
            stats=evaluator.stats,
            seed=seed,
            elapsed=elapsed,
            stop_reason=stop_reason,
        )

    def _resolve_tracer(self, seed: int) -> tuple[Tracer | None, bool]:
        """The tracer this run should emit into, if any.

        An explicitly attached :attr:`tracer` wins; otherwise
        :attr:`trace_dir` opens a per-seed JSONL trace owned (and closed)
        by this run.  Returns ``(tracer, owns_tracer)``.
        """
        if self.tracer is not None and self.tracer.enabled:
            return self.tracer, False
        if self.trace_dir is not None:
            path = os.path.join(
                os.fspath(self.trace_dir), f"run-{seed}.jsonl"
            )
            return Tracer(JsonlSink(path)), True
        return None, False

    @staticmethod
    def _phase(
        profile: PhaseProfile | None, name: str
    ) -> ContextManager[None]:
        """A profiler phase, or a no-op when profiling is off."""
        if profile is None:
            return nullcontext()
        return profile.phase(name)

    @staticmethod
    def _trace_generation(
        tracer: Tracer | None,
        profile: PhaseProfile | None,
        record: GenerationRecord,
    ) -> None:
        """Emit one ``generation`` event with the drained phase times."""
        if tracer is None:
            return
        phases = profile.drain() if profile is not None else {}
        tracer.point(
            "generation",
            generation=record.generation,
            best_fitness=record.best_fitness,
            mean_fitness=record.mean_fitness,
            best_size=record.best_size,
            evaluations=record.evaluations_so_far,
            best_fully_evaluated=record.best_fully_evaluated,
            select_time=phases.get("select", 0.0),
            evaluate_time=phases.get("evaluate", 0.0),
            local_search_time=phases.get("local_search", 0.0),
            checkpoint_time=phases.get("checkpoint", 0.0),
        )

    def _governor_tick(
        self,
        governor: RunGovernor | None,
        tracer: Tracer | None,
        evaluator: GMRFitnessEvaluator,
        generation: int,
        seed: int,
        rng: random.Random,
        population: list[Individual],
        best: Individual,
        history: list[GenerationRecord],
        checkpoint_path: str | os.PathLike[str] | None,
        started: float,
        elapsed_before: float,
        heartbeat: bool = True,
    ) -> str | None:
        """One governor consultation at a generation boundary.

        Emits the heartbeat, checks budgets and the cooperative stop
        flag, and -- when stopping -- emits the ``run_stop`` event and
        forces a final checkpoint (regardless of cadence) with the stop
        reason stamped into the envelope.  The stop event and the forced
        save happen *before* the envelope's ``trace_seq`` is recorded,
        so a resumed run's stitched trace continues right after them.
        """
        if governor is None:
            return None
        elapsed_now = elapsed_before + (time.perf_counter() - started)
        evaluations = evaluator.stats.evaluations
        if heartbeat and tracer is not None:
            governor.heartbeat(
                tracer,
                generation=generation,
                evaluations=evaluations,
                elapsed=elapsed_now,
            )
        reason = governor.check(
            generation=generation,
            evaluations=evaluations,
            elapsed=elapsed_now,
        )
        if reason is None:
            return None
        if tracer is not None:
            tracer.point(
                "run_stop",
                reason=reason,
                generation=generation,
                evaluations=evaluations,
                elapsed=elapsed_now,
            )
        if checkpoint_path is not None:
            self._write_checkpoint(
                checkpoint_path, seed, generation, rng, population, best,
                history, evaluator, started, elapsed_before, tracer,
                stop_reason=reason,
            )
        return reason

    def _maybe_checkpoint(
        self,
        path: str | os.PathLike[str] | None,
        seed: int,
        generation: int,
        rng: random.Random,
        population: list[Individual],
        best: Individual,
        history: list[GenerationRecord],
        evaluator: GMRFitnessEvaluator,
        started: float,
        elapsed_before: float,
        tracer: Tracer | None = None,
    ) -> None:
        """Snapshot the loop state if the cadence says this generation."""
        every = self.config.checkpoint_every
        if path is None or every <= 0 or generation % every != 0:
            return
        self._write_checkpoint(
            path, seed, generation, rng, population, best, history,
            evaluator, started, elapsed_before, tracer,
        )

    def _write_checkpoint(
        self,
        path: str | os.PathLike[str],
        seed: int,
        generation: int,
        rng: random.Random,
        population: list[Individual],
        best: Individual,
        history: list[GenerationRecord],
        evaluator: GMRFitnessEvaluator,
        started: float,
        elapsed_before: float,
        tracer: Tracer | None = None,
        stop_reason: str | None = None,
    ) -> None:
        """Write one envelope now (cadence snapshot or forced stop save)."""
        # The checkpoint event goes out *before* the save, so the stored
        # trace offset covers it and a resumed run continues the JSONL
        # trace right after it without reusing sequence numbers.
        if tracer is not None:
            tracer.point(
                "checkpoint", generation=generation, path=os.fspath(path)
            )
        save_checkpoint(
            RunCheckpoint(
                seed=seed,
                generation=generation,
                elapsed=elapsed_before + (time.perf_counter() - started),
                config_repr=repr(self.config),
                rng_state=rng.getstate(),
                population=population,
                best=best,
                history=list(history),
                evaluator=evaluator,
                trace_seq=tracer.seq if tracer is not None else 0,
                domain=self.config.domain,
                domain_spec_hash=self._domain_spec_hash(),
                stop_reason=stop_reason,
            ),
            path,
            keep=self.config.checkpoint_keep,
        )

    def _lint_artifacts(self) -> None:
        """Strict mode: lint the grammar and knowledge bundle up front."""
        from repro.lint import lint_knowledge

        lint_knowledge(self.knowledge, self.grammar).raise_if_errors(
            "strict_validate: grammar/knowledge failed the lint pass"
        )

    def _triage_seed(self) -> None:
        """Static-triage mode: prove the expert seed clean up front.

        A seed whose equations static triage would skip (provably NaN
        over the task's reachable inputs) means the knowledge bundle and
        task disagree -- fail loudly at generation 0 instead of running
        a search in which the seed and all its neighbourhoods score the
        divergence sentinel.  Tasks without the plain-ODE surface
        (duck-typed ``error_stream``-only tasks) are not triaged.
        """
        if not all(
            hasattr(self.task, attr)
            for attr in ("drivers", "initial_state", "dt", "clamp")
        ):
            return
        from repro.lint import LintReport
        from repro.lint.triage import (
            context_for_task,
            fatal_findings,
            triage_equations,
        )

        spec = None
        try:
            from repro.domains import get_domain

            spec = get_domain(self.config.domain)
        except Exception:
            spec = None
        context = context_for_task(self.task, spec)
        report = triage_equations(
            self.knowledge.seed_equations, context, obj="seed equation"
        )
        fatal = fatal_findings(report)
        if fatal:
            failing = LintReport()
            for finding in fatal:
                failing.add(finding)
            failing.raise_if_errors(
                "static_triage: the expert seed is provably divergent "
                "on this task"
            )

    def _lint_offspring(
        self, individuals: list[Individual], context: str
    ) -> None:
        """Strict mode: lint derivations before they reach evaluation.

        All findings across the cohort are aggregated into one
        :class:`repro.lint.LintError` so a malformed batch fails once,
        with every offending individual named, instead of N times.
        """
        from repro.lint import LintReport, lint_derivation

        report = LintReport()
        for index, individual in enumerate(individuals):
            found = lint_derivation(individual.derivation, self.grammar)
            for diagnostic in found:
                location = replace(
                    diagnostic.location,
                    detail=(
                        f"individual {index}"
                        if not diagnostic.location.detail
                        else f"individual {index}; {diagnostic.location.detail}"
                    ),
                )
                report.add(replace(diagnostic, location=location))
        report.raise_if_errors(f"strict_validate: {context}")

    def _spawn_offspring(
        self,
        population: list[Individual],
        rng: random.Random,
        sigma_scale: float,
        evaluator: GMRFitnessEvaluator,
    ) -> list[Individual]:
        """One reproduction-operator roll: select parents, produce children."""
        config = self.config
        ops = config.operators

        def select() -> Individual:
            return tournament_select(population, config.tournament_size, rng)

        roll = rng.random()
        if roll < ops.crossover:
            pair = crossover(select(), select(), self.grammar, config, rng)
            if pair is None:
                return [replication(select())]
            return list(pair)
        if roll < ops.crossover + ops.subtree_mutation:
            child = subtree_mutation(select(), self.grammar, config, rng)
            return [child if child is not None else replication(select())]
        if roll < ops.crossover + ops.subtree_mutation + ops.gaussian_mutation:
            if config.gaussian_proposals > 1:
                # Propose-K-then-pick-best: all proposals share the
                # parent's structure, so one batched rollout scores them.
                return [
                    gaussian_mutation_best_of(
                        select(), self.knowledge, config, rng, sigma_scale,
                        evaluator.evaluate_batch,
                    )
                ]
            return [
                gaussian_mutation(
                    select(), self.knowledge, config, rng, sigma_scale
                )
            ]
        return [replication(select())]

    def _local_search(
        self,
        child: Individual,
        evaluator: GMRFitnessEvaluator,
        rng: random.Random,
        sigma_scale: float,
    ) -> Individual:
        config = self.config
        if self.use_local_search and config.local_search_steps > 0:
            return hill_climb(
                child,
                self.grammar,
                config,
                evaluator.evaluate,
                rng,
                knowledge=self.knowledge,
                sigma_scale=sigma_scale,
                batch_fitness_fn=evaluator.evaluate_batch,
            )
        return child

    def _ensure_backend(self) -> EvaluationBackend:
        if self.eval_backend is None:
            if self.config.n_workers > 1:
                self.eval_backend = ProcessPoolBackend(
                    max_workers=self.config.n_workers
                )
            else:
                self.eval_backend = SerialBackend()
        return self.eval_backend

    def _next_generation(
        self,
        population: list[Individual],
        evaluator: GMRFitnessEvaluator,
        rng: random.Random,
        sigma_scale: float,
        profile: PhaseProfile | None = None,
    ) -> list[Individual]:
        config = self.config
        if config.eval_batch_size > 0:
            return self._next_generation_batched(
                population, evaluator, rng, sigma_scale, profile
            )
        next_population: list[Individual] = elites(population, config.elite_size)
        while len(next_population) < config.population_size:
            # "select" covers parent selection and operator application
            # (including any proposal scoring the operator does itself).
            with self._phase(profile, "select"):
                children = self._spawn_offspring(
                    population, rng, sigma_scale, evaluator
                )
            for child in children:
                if len(next_population) >= config.population_size:
                    break
                if config.strict_validate:
                    self._lint_offspring([child], "offspring")
                if child.fitness is None:
                    with self._phase(profile, "evaluate"):
                        evaluator.evaluate(child)
                with self._phase(profile, "local_search"):
                    child = self._local_search(
                        child, evaluator, rng, sigma_scale
                    )
                next_population.append(child)
        return next_population

    def _next_generation_batched(
        self,
        population: list[Individual],
        evaluator: GMRFitnessEvaluator,
        rng: random.Random,
        sigma_scale: float,
        profile: PhaseProfile | None = None,
    ) -> list[Individual]:
        """Batched offspring evaluation through the evaluation backend.

        The whole offspring cohort is generated *unevaluated* first, then
        evaluated in batches of ``config.eval_batch_size`` via the
        backend, then local-searched.  With a process-pool backend the ES
        ``best_prev_full`` marker synchronises once per batch rather than
        once per individual, so results can differ slightly from the
        serial path (see :mod:`repro.gp.parallel`); set
        ``eval_batch_size=0`` to restore strictly serial semantics.
        """
        config = self.config
        next_population: list[Individual] = elites(population, config.elite_size)
        budget = config.population_size - len(next_population)
        offspring: list[Individual] = []
        with self._phase(profile, "select"):
            while len(offspring) < budget:
                for child in self._spawn_offspring(
                    population, rng, sigma_scale, evaluator
                ):
                    if len(offspring) >= budget:
                        break
                    offspring.append(child)

        if config.strict_validate:
            self._lint_offspring(offspring, "offspring cohort")
        backend = self._ensure_backend()
        batch_size = config.eval_batch_size
        for start in range(0, len(offspring), batch_size):
            batch = offspring[start : start + batch_size]
            pending = [child for child in batch if child.fitness is None]
            if pending:
                with self._phase(profile, "evaluate"):
                    backend.evaluate_batch(evaluator, pending)
            with self._phase(profile, "local_search"):
                for child in batch:
                    child = self._local_search(
                        child, evaluator, rng, sigma_scale
                    )
                    next_population.append(child)
        return next_population

    @staticmethod
    def _track_best(
        best: Individual | None, population: list[Individual]
    ) -> Individual:
        candidate = best_of(population)
        # NB: `best.fitness or inf` would treat a legitimate 0.0 champion
        # as missing and let any candidate displace it; only None means
        # "no fitness yet".
        incumbent = (
            float("inf") if best is None or best.fitness is None
            else best.fitness
        )
        if best is None or (
            candidate.fitness is not None and candidate.fitness < incumbent
        ):
            clone = candidate.copy()
            clone.fitness = candidate.fitness
            clone.fully_evaluated = candidate.fully_evaluated
            return clone
        return best

    @staticmethod
    def _record(
        generation: int,
        population: list[Individual],
        evaluator: GMRFitnessEvaluator,
    ) -> GenerationRecord:
        fitnesses = [
            individual.fitness
            for individual in population
            if individual.fitness is not None
        ]
        champion = best_of(population)
        return GenerationRecord(
            generation=generation,
            best_fitness=champion.fitness if champion.fitness is not None else float("inf"),
            mean_fitness=sum(fitnesses) / len(fitnesses) if fitnesses else float("inf"),
            best_size=champion.size,
            best_fully_evaluated=champion.fully_evaluated,
            evaluations_so_far=evaluator.stats.evaluations,
        )


def run_many(
    engine: GMREngine,
    n_runs: int,
    base_seed: int = 0,
) -> list[RunResult]:
    """Execute several independent runs with consecutive seeds.

    When ``engine.config.n_workers > 1`` the runs are farmed to a process
    pool via :func:`repro.gp.parallel.run_many_parallel`; per-run results
    are identical to serial execution either way (each run owns its
    evaluator, so seeds fully determine outcomes).
    """
    if engine.config.n_workers > 1 and n_runs > 1:
        from repro.gp.parallel import run_many_parallel

        return run_many_parallel(
            engine, n_runs, base_seed, max_workers=engine.config.n_workers
        )
    return [engine.run(seed=base_seed + index) for index in range(n_runs)]
