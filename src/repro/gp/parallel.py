"""Process-pool execution for the GMR engine.

Two independent levels of parallelism, matching the two cost axes of the
reproduction:

1. **Run-level** -- :func:`run_many_parallel` farms independent seeded
   runs to worker processes.  Runs are embarrassingly parallel (the paper
   executed 60 per method; related TAG-GP work likewise repeats
   independent evolutionary runs), and because every run builds its own
   :class:`~repro.gp.fitness.GMRFitnessEvaluator`, caches stay
   process-local and the results are bit-identical to the serial
   ``run_many`` path.
2. **Evaluation-level** -- an :class:`EvaluationBackend` seam through
   which :class:`~repro.gp.engine.GMREngine` evaluates batches of
   offspring.  :class:`SerialBackend` preserves the strictly sequential
   semantics; :class:`ProcessPoolBackend` spreads a batch over a worker
   pool, synchronising the ES ``best_prev_full`` marker once per batch
   (documented caveat: slightly lazier short-circuiting than the
   per-individual serial path).

Failure handling is governed by :class:`~repro.gp.resilience.
FailurePolicy`.  By default workers fail loudly: an exception inside a
worker surfaces in the parent as :class:`ParallelRunError` naming the
seed that failed (outstanding work is cancelled), never as a hang.  With
``policy=collect``/``retry`` a campaign instead returns a
:class:`~repro.gp.resilience.CampaignResult` carrying every completed
run plus structured failure records, optionally after bounded retries.
A pool broken by a dying worker (OOM kill, segfault) is rebuilt and the
affected seeds are re-submitted, bounded by ``policy.max_pool_rebuilds``;
:class:`ProcessPoolBackend` recovers the same way at evaluation level.
Everything shipped across the process boundary is picklable -- compiled
step functions are dropped on pickling and rebuilt lazily on first use
in the receiving process.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.gp.checkpoint import (
    CheckpointError,
    checkpoint_file,
    load_checkpoint_resilient,
    result_file,
    save_result,
)
from repro.gp.fitness import EvaluationStats, GMRFitnessEvaluator
from repro.gp.individual import Individual
from repro.gp.resilience import (
    COLLECT,
    FAIL_FAST,
    RETRY,
    CampaignResult,
    FailurePolicy,
    RunFailure,
)
from repro.obs.metrics import GLOBAL_METRICS
from repro.obs.trace import MemorySink, TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.gp.engine import GMREngine, RunResult


class ParallelRunError(RuntimeError):
    """A worker process failed while executing a seeded run.

    Attributes:
        seed: The run seed whose worker raised.
    """

    def __init__(self, seed: int, cause: BaseException) -> None:
        super().__init__(
            f"parallel run with seed {seed} failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.seed = seed


def default_workers(n_tasks: int, requested: int | None = None) -> int:
    """Resolve a worker count: the request, capped by tasks and CPUs.

    The ``REPRO_MAX_WORKERS`` environment variable caps the result
    unconditionally (CI runners set it to their vCPU count).  A value
    that does not parse as an integer is ignored with a warning, so a
    misconfigured runner is visible instead of silently uncapped.
    """
    if requested is None:
        requested = os.cpu_count() or 1
    cap = os.environ.get("REPRO_MAX_WORKERS")
    if cap:
        try:
            parsed = int(cap)
        except ValueError:
            warnings.warn(
                f"ignoring malformed REPRO_MAX_WORKERS={cap!r} "
                "(expected an integer); worker pools are uncapped",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            requested = min(requested, max(1, parsed))
    return max(1, min(requested, n_tasks))


def _run_one(
    engine: "GMREngine",
    seed: int,
    checkpoint_dir: str | None = None,
) -> "RunResult":
    """Worker entry point: one full evolutionary run.

    ``engine.run`` builds a fresh evaluator, so caches and the ES
    ``best_prev_full`` marker are private to this run -- which is exactly
    what makes parallel results bit-identical to serial ones.  With a
    checkpoint directory, the run snapshots itself there (on the
    ``config.checkpoint_every`` cadence) and resumes from the last
    snapshot an interrupted attempt left behind; an unreadable snapshot
    is discarded with a warning and the run restarts from scratch.
    """
    if checkpoint_dir is None:
        return engine.run(seed=seed)
    path = checkpoint_file(checkpoint_dir, seed)
    resume = None
    if os.path.exists(path):
        try:
            resume = load_checkpoint_resilient(path)
        except CheckpointError as exc:
            warnings.warn(
                f"restarting seed {seed} from scratch: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return engine.run(seed=seed, resume_from=resume, checkpoint_path=path)


def _finalize_run(
    checkpoint_dir: str | None, seed: int, result: "RunResult"
) -> None:
    """Persist a completed run's result and drop its mid-run snapshot."""
    if checkpoint_dir is None:
        return
    save_result(result, result_file(checkpoint_dir, seed))
    try:
        os.remove(checkpoint_file(checkpoint_dir, seed))
    except FileNotFoundError:
        pass


def run_many_parallel(
    engine: "GMREngine",
    n_runs: int,
    base_seed: int = 0,
    max_workers: int | None = None,
    policy: FailurePolicy | None = None,
) -> "list[RunResult] | CampaignResult":
    """Execute independent seeded runs across a process pool.

    Equivalent to ``run_many(engine, n_runs, base_seed)`` -- same seeds,
    same per-run ``best_fitness`` histories -- but wall-clock scales with
    the number of workers.  Results are returned in seed order.

    Args:
        engine: The engine to run; must be picklable (it is, including
            grammars and compiled models, which rebuild lazily).
        n_runs: Number of independent runs (seeds ``base_seed + i``).
        base_seed: First seed.
        max_workers: Pool size; defaults to ``min(n_runs, cpu_count)``.
            1 runs in-process (no pool) but keeps the same error
            contract.
        policy: Failure handling.  None (the default) keeps the
            historical contract -- fail fast, return a plain list.  With
            a policy the call returns a :class:`~repro.gp.resilience.
            CampaignResult` of completed runs plus structured failures
            (``fail_fast`` mode still raises).

    Raises:
        ParallelRunError: A worker raised under fail-fast handling; the
            error names the seed, and outstanding runs are cancelled.
    """
    seeds = [base_seed + index for index in range(max(0, n_runs))]
    if policy is None:
        outcome = execute_campaign(
            engine, seeds, FailurePolicy.fail_fast(), max_workers, None
        )
        return outcome.completed
    return execute_campaign(engine, seeds, policy, max_workers, None)


def execute_campaign(
    engine: "GMREngine",
    seeds: Sequence[int],
    policy: FailurePolicy,
    max_workers: int | None = None,
    checkpoint_dir: str | None = None,
    tracer: Tracer | None = None,
) -> CampaignResult:
    """Run ``seeds`` under ``policy``; the engine room of campaigns.

    Callers normally reach this through :func:`run_many_parallel` or
    :func:`repro.gp.resilience.run_campaign` (which adds completed-result
    reuse on top).  ``tracer`` receives ``campaign_retry`` events when a
    failed seed re-enters under a retry policy.
    """
    if not seeds:
        return CampaignResult(completed=[], failed=[])
    if tracer is not None and not tracer.enabled:
        tracer = None
    workers = default_workers(len(seeds), max_workers)
    if workers == 1:
        return _campaign_serial(
            engine, list(seeds), policy, checkpoint_dir, tracer
        )
    return _campaign_pooled(
        engine, list(seeds), policy, workers, checkpoint_dir, tracer
    )


def _campaign_serial(
    engine: "GMREngine",
    seeds: list[int],
    policy: FailurePolicy,
    checkpoint_dir: str | None,
    tracer: Tracer | None = None,
) -> CampaignResult:
    """In-process execution with the same policy semantics as the pool.

    The per-run ``timeout`` watchdog cannot interrupt in-process code and
    is not enforced here.
    """
    completed: list[RunResult] = []
    failed: list[RunFailure] = []
    stop_reason: str | None = None
    governor = getattr(engine, "governor", None)
    for seed in seeds:
        if governor is not None and governor.stop_requested is not None:
            # A cooperative stop (signal) raised between runs; do not
            # start another seed just to have it stop at generation 0.
            stop_reason = governor.stop_requested
            break
        started = time.monotonic()
        attempt = 0
        while True:
            attempt += 1
            try:
                result = _run_one(engine, seed, checkpoint_dir)
            except Exception as exc:
                if policy.mode == FAIL_FAST:
                    raise ParallelRunError(seed, exc) from exc
                if policy.mode == RETRY and attempt < policy.max_attempts:
                    delay = policy.retry.delay(seed, attempt)
                    if tracer is not None:
                        tracer.point(
                            "campaign_retry",
                            seed=seed,
                            attempt=attempt,
                            error_type=type(exc).__name__,
                            delay=delay,
                        )
                    time.sleep(delay)
                    continue
                failed.append(
                    RunFailure.from_exception(
                        seed, attempt, exc, time.monotonic() - started
                    )
                )
                break
            else:
                completed.append(result)
                # A budget- or signal-stopped run is partial: keep its
                # snapshot (no .result file) so re-running the campaign
                # with a larger budget resumes it, and stop the
                # campaign instead of burning budget on later seeds.
                stop_reason = getattr(result, "stop_reason", None)
                if stop_reason is None:
                    _finalize_run(checkpoint_dir, seed, result)
                break
        if stop_reason is not None:
            break
    return CampaignResult(
        completed=completed, failed=failed, stop_reason=stop_reason
    )


def _campaign_pooled(
    engine: "GMREngine",
    seeds: list[int],
    policy: FailurePolicy,
    workers: int,
    checkpoint_dir: str | None,
    tracer: Tracer | None = None,
) -> CampaignResult:
    """Round-based pooled execution with retries and pool rebuilds.

    Each round submits every outstanding seed, then collects in seed
    order.  Failed seeds either terminate the campaign (``fail_fast``),
    are recorded (``collect``), or re-enter the next round (``retry``,
    after the deterministic backoff).  A broken pool is rebuilt (bounded
    by ``policy.max_pool_rebuilds``) and the seeds it swallowed are
    re-submitted without consuming their retry attempts.
    """
    completed: dict[int, RunResult] = {}
    failed: dict[int, RunFailure] = {}
    attempts = {seed: 0 for seed in seeds}
    first_seen = {seed: time.monotonic() for seed in seeds}
    outstanding = list(seeds)
    rebuilds = 0
    timed_out = False
    stop_reason: str | None = None
    governor = getattr(engine, "governor", None)
    pool = ProcessPoolExecutor(max_workers=workers)

    def record_failure(seed: int, error: BaseException) -> None:
        failed[seed] = RunFailure.from_exception(
            seed, attempts[seed], error, time.monotonic() - first_seen[seed]
        )

    try:
        while outstanding:
            if stop_reason is None and governor is not None:
                # Signals land in the parent; workers run to their own
                # budgets, so a stop between rounds is checked here.
                stop_reason = governor.stop_requested
            if stop_reason is not None:
                break
            retry_later: list[int] = []
            rebuild_seeds: list[int] = []
            pool_error: BaseException | None = None
            for seed in outstanding:
                attempts[seed] += 1
            round_started = time.monotonic()
            futures = {}
            for seed in outstanding:
                try:
                    futures[seed] = pool.submit(
                        _run_one, engine, seed, checkpoint_dir
                    )
                except BrokenExecutor as exc:
                    pool_error = exc
                    rebuild_seeds.append(seed)

            def handle_failure(seed: int, error: BaseException) -> None:
                if policy.mode == FAIL_FAST:
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise ParallelRunError(seed, error) from error
                if (
                    policy.mode == RETRY
                    and attempts[seed] < policy.retry.max_attempts
                ):
                    retry_later.append(seed)
                    if tracer is not None:
                        tracer.point(
                            "campaign_retry",
                            seed=seed,
                            attempt=attempts[seed],
                            error_type=type(error).__name__,
                        )
                else:
                    record_failure(seed, error)

            for seed in outstanding:
                future = futures.get(seed)
                if future is None:
                    continue  # submission hit a broken pool
                if timed_out:
                    # A previous run in this round blew the watchdog;
                    # drain the rest without blocking.  Never-started
                    # futures are cancelled, in-flight stragglers get
                    # their own failure record each, and runs that
                    # finished in the meantime are still harvested.
                    if future.cancel():
                        handle_failure(
                            seed,
                            TimeoutError(
                                f"run with seed {seed} cancelled after "
                                f"the round exceeded the "
                                f"{policy.timeout}s watchdog"
                            ),
                        )
                        continue
                    if not future.done():
                        handle_failure(
                            seed,
                            TimeoutError(
                                f"run with seed {seed} still running "
                                f"after the round exceeded the "
                                f"{policy.timeout}s watchdog"
                            ),
                        )
                        continue
                try:
                    if policy.timeout is None or timed_out:
                        result = future.result()
                    else:
                        budget = max(
                            0.0,
                            round_started + policy.timeout - time.monotonic(),
                        )
                        result = future.result(timeout=budget)
                except FuturesTimeoutError:
                    timed_out = True
                    future.cancel()
                    handle_failure(
                        seed,
                        TimeoutError(
                            f"run with seed {seed} exceeded the "
                            f"{policy.timeout}s watchdog"
                        ),
                    )
                except BrokenExecutor as exc:
                    pool_error = exc
                    rebuild_seeds.append(seed)
                except Exception as exc:
                    handle_failure(seed, exc)
                else:
                    completed[seed] = result
                    # Budget-stopped partial results keep their
                    # snapshots and end the campaign after this round.
                    run_stop = getattr(result, "stop_reason", None)
                    if run_stop is not None:
                        if stop_reason is None:
                            stop_reason = run_stop
                    else:
                        _finalize_run(checkpoint_dir, seed, result)

            if pool_error is not None:
                pool.shutdown(wait=False, cancel_futures=True)
                if rebuilds >= policy.max_pool_rebuilds:
                    if policy.mode == FAIL_FAST:
                        raise ParallelRunError(
                            rebuild_seeds[0], pool_error
                        ) from pool_error
                    for seed in rebuild_seeds:
                        record_failure(seed, pool_error)
                    rebuild_seeds = []
                else:
                    rebuilds += 1
                    GLOBAL_METRICS.counter("pool.campaign_rebuilds").inc()
                    pool = ProcessPoolExecutor(max_workers=workers)
                    # The pool died under these seeds; they never failed
                    # on their own, so give their attempts back.
                    for seed in rebuild_seeds:
                        attempts[seed] -= 1

            if retry_later:
                delay = max(
                    policy.retry.delay(seed, attempts[seed])
                    for seed in retry_later
                )
                if delay > 0:
                    time.sleep(delay)
            outstanding = sorted(rebuild_seeds + retry_later)
    finally:
        # A timed-out run may still occupy a worker; do not block on it.
        pool.shutdown(wait=not timed_out, cancel_futures=True)
    return CampaignResult(
        completed=[completed[seed] for seed in sorted(completed)],
        failed=[failed[seed] for seed in sorted(failed)],
        stop_reason=stop_reason,
    )


def aggregate_stats(results: Sequence["RunResult"]) -> EvaluationStats:
    """Merge the per-run evaluation statistics of several runs."""
    return EvaluationStats.merge_all(result.stats for result in results)


class EvaluationBackend(ABC):
    """Strategy for evaluating a batch of unevaluated offspring.

    The engine hands over individuals whose ``fitness`` is ``None``; the
    backend must set ``fitness`` and ``fully_evaluated`` on each and keep
    the evaluator's statistics and ``best_prev_full`` marker up to date.
    """

    @abstractmethod
    def evaluate_batch(
        self,
        evaluator: GMRFitnessEvaluator,
        individuals: Sequence[Individual],
    ) -> None:
        """Evaluate ``individuals`` in place."""

    def close(self) -> None:
        """Release pooled resources (no-op for in-process backends)."""


class SerialBackend(EvaluationBackend):
    """In-process evaluation, identical to the engine's historical path:
    ``best_prev_full`` tightens after every individual."""

    def evaluate_batch(
        self,
        evaluator: GMRFitnessEvaluator,
        individuals: Sequence[Individual],
    ) -> None:
        # Delegates to the evaluator's own cohort path, which routes the
        # batch through the batched kernels when enabled and replays the
        # per-individual Algorithm 1 semantics either way.
        evaluator.evaluate_batch(list(individuals))


# Per-worker-process evaluator, created once by the pool initializer so
# tree/compilation caches persist across batches within one worker.
_WORKER_EVALUATOR: GMRFitnessEvaluator | None = None


def _init_eval_worker(evaluator: GMRFitnessEvaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _evaluate_chunk(
    individuals: list[Individual],
    best_prev_full: float,
    collect_trace: bool = False,
) -> tuple[
    list[tuple[float, bool]], EvaluationStats, float, list[TraceEvent]
]:
    """Worker entry point: evaluate one chunk of a batch.

    Returns per-individual ``(fitness, fully_evaluated)`` pairs, the
    statistics delta for this chunk, the worker's updated
    ``best_prev_full`` (for the parent's per-batch fan-in), and -- when
    ``collect_trace`` is set -- the chunk's trace events, recorded into
    an in-memory sink here and re-emitted (span-remapped) by the
    parent's tracer.
    """
    evaluator = _WORKER_EVALUATOR
    assert evaluator is not None, "pool initializer did not run"
    evaluator.best_prev_full = best_prev_full
    evaluator.stats = EvaluationStats()
    sink: MemorySink | None = None
    if collect_trace:
        sink = MemorySink()
        evaluator.tracer = Tracer(sink)
    try:
        evaluator.evaluate_batch(individuals)
    finally:
        evaluator.tracer = None
    outcomes = [
        (individual.fitness, individual.fully_evaluated)
        for individual in individuals
    ]
    events = sink.events if sink is not None else []
    return outcomes, evaluator.stats, evaluator.best_prev_full, events


@dataclass
class ProcessPoolBackend(EvaluationBackend):
    """Evaluate offspring batches across a pool of worker processes.

    Each worker owns a process-local evaluator (tree cache, compiled-
    function table) that persists across batches.  The ES marker
    ``best_prev_full`` is broadcast at the start of each batch and the
    minimum over workers is folded back afterwards -- per-*batch*
    synchronisation, slightly lazier than the serial per-individual
    tightening, which is why batched evaluation is opt-in
    (``GMRConfig.eval_batch_size``) and switchable back to
    :class:`SerialBackend` semantics at any time.

    A worker dying mid-batch (OOM kill, segfault) breaks the whole pool;
    the backend detects ``BrokenProcessPool``, rebuilds its pool, and
    re-submits only the chunks whose results it never received -- at most
    ``max_pool_rebuilds`` times per batch.  Statistics are folded in once
    per *successfully returned* chunk, so recovery never double-counts
    evaluations and the ES marker stays consistent.  (Re-submitted chunks
    observe the ``best_prev_full`` current at re-submission, which is at
    least as tight as the original broadcast -- within the documented
    per-batch synchronisation semantics.)

    When the rebuild budget is exhausted the backend descends the
    degradation ladder instead of aborting the campaign: with
    ``serial_fallback`` (the default) it evaluates the unfinished chunks
    in the parent process, counts one ``pool_fallbacks`` in the
    evaluator's statistics, emits a ``degradation`` trace event, and
    stays serial for the rest of its life (the sticky ``_degraded``
    flag) -- a pool that broke ``max_pool_rebuilds + 1`` times is
    presumed hostile to workers.  ``serial_fallback=False`` preserves
    the historical raise-on-exhaustion contract.

    The backend itself stays picklable: the live pool is dropped on
    pickling and lazily rebuilt.
    """

    max_workers: int = 2
    max_pool_rebuilds: int = 2
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        self._pool: ProcessPoolExecutor | None = None
        self._degraded = False

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_pool"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("serial_fallback", True)
        self.__dict__.setdefault("_degraded", False)

    @property
    def effective_workers(self) -> int:
        """Pool size after the ``REPRO_MAX_WORKERS`` cap."""
        return default_workers(self.max_workers, self.max_workers)

    def _ensure_pool(self, evaluator: GMRFitnessEvaluator) -> ProcessPoolExecutor:
        if self._pool is None:
            # Seed each worker with a reset clone of the caller's
            # evaluator: same class (so test doubles keep their
            # behaviour), but private caches, statistics, and ES marker.
            seed_evaluator = pickle.loads(pickle.dumps(evaluator))
            seed_evaluator.reset()
            self._pool = ProcessPoolExecutor(
                max_workers=self.effective_workers,
                initializer=_init_eval_worker,
                initargs=(seed_evaluator,),
            )
        return self._pool

    def evaluate_batch(
        self,
        evaluator: GMRFitnessEvaluator,
        individuals: Sequence[Individual],
    ) -> None:
        pending = list(individuals)
        if not pending:
            return
        if self._degraded:
            # The ladder already engaged for this backend; everything
            # evaluates in-process with SerialBackend semantics.
            evaluator.evaluate_batch(pending)
            return
        trace = evaluator._active_tracer()
        chunk_size = -(-len(pending) // self.effective_workers)  # ceil division
        remaining = [
            pending[start : start + chunk_size]
            for start in range(0, len(pending), chunk_size)
        ]
        rebuilds = 0
        while remaining:
            pool = self._ensure_pool(evaluator)
            submitted = []
            pool_error: BaseException | None = None
            for chunk in remaining:
                try:
                    submitted.append(
                        (chunk, pool.submit(
                            _evaluate_chunk, chunk, evaluator.best_prev_full,
                            trace is not None,
                        ))
                    )
                except BrokenExecutor as exc:
                    pool_error = exc
                    submitted.append((chunk, None))
            unfinished: list[list[Individual]] = []
            best = evaluator.best_prev_full
            for chunk, future in submitted:
                if future is None:
                    unfinished.append(chunk)
                    continue
                try:
                    outcomes, stats_delta, worker_best, events = (
                        future.result()
                    )
                except BrokenExecutor as exc:
                    pool_error = exc
                    unfinished.append(chunk)
                    continue
                for individual, (fitness, fully) in zip(chunk, outcomes):
                    individual.fitness = fitness
                    individual.fully_evaluated = fully
                # Statistics (and trace events) fold in once per
                # *successfully returned* chunk, so pool-rebuild
                # re-submissions never double-count.
                evaluator.stats = evaluator.stats.merge(stats_delta)
                best = min(best, worker_best)
                if trace is not None and events:
                    trace.absorb(events)
            evaluator.best_prev_full = best
            if pool_error is not None:
                self._discard_pool()
                if rebuilds >= self.max_pool_rebuilds:
                    if not self.serial_fallback:
                        raise pool_error
                    # Second rung of the degradation ladder: evaluate
                    # the chunks the broken pool never returned in the
                    # parent process (their statistics were never
                    # folded, so nothing double-counts), and stay
                    # serial from here on.
                    self._degrade(evaluator, pool_error)
                    for chunk in unfinished:
                        evaluator.evaluate_batch(chunk)
                    return
                rebuilds += 1
                GLOBAL_METRICS.counter("pool.eval_rebuilds").inc()
            remaining = unfinished

    def _degrade(
        self, evaluator: GMRFitnessEvaluator, error: BaseException
    ) -> None:
        """Flip the sticky serial-fallback flag and account for it."""
        self._degraded = True
        evaluator.stats.pool_fallbacks += 1
        GLOBAL_METRICS.counter("pool.serial_fallbacks").inc()
        tracer = evaluator._active_tracer()
        if tracer is not None:
            tracer.point(
                "degradation",
                what="pool_serial_fallback",
                error_type=type(error).__name__,
                detail=str(error)[:200],
            )

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
