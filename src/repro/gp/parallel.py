"""Process-pool execution for the GMR engine.

Two independent levels of parallelism, matching the two cost axes of the
reproduction:

1. **Run-level** -- :func:`run_many_parallel` farms independent seeded
   runs to worker processes.  Runs are embarrassingly parallel (the paper
   executed 60 per method; related TAG-GP work likewise repeats
   independent evolutionary runs), and because every run builds its own
   :class:`~repro.gp.fitness.GMRFitnessEvaluator`, caches stay
   process-local and the results are bit-identical to the serial
   ``run_many`` path.
2. **Evaluation-level** -- an :class:`EvaluationBackend` seam through
   which :class:`~repro.gp.engine.GMREngine` evaluates batches of
   offspring.  :class:`SerialBackend` preserves the strictly sequential
   semantics; :class:`ProcessPoolBackend` spreads a batch over a worker
   pool, synchronising the ES ``best_prev_full`` marker once per batch
   (documented caveat: slightly lazier short-circuiting than the
   per-individual serial path).

Workers fail loudly: an exception inside a worker surfaces in the parent
as :class:`ParallelRunError` naming the seed that failed, never as a
hang.  Everything shipped across the process boundary is picklable --
compiled step functions are dropped on pickling and rebuilt lazily on
first use in the receiving process.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.gp.fitness import EvaluationStats, GMRFitnessEvaluator
from repro.gp.individual import Individual

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.gp.engine import GMREngine, RunResult


class ParallelRunError(RuntimeError):
    """A worker process failed while executing a seeded run.

    Attributes:
        seed: The run seed whose worker raised.
    """

    def __init__(self, seed: int, cause: BaseException) -> None:
        super().__init__(
            f"parallel run with seed {seed} failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.seed = seed


def default_workers(n_tasks: int, requested: int | None = None) -> int:
    """Resolve a worker count: the request, capped by tasks and CPUs.

    The ``REPRO_MAX_WORKERS`` environment variable caps the result
    unconditionally (CI runners set it to their vCPU count).
    """
    if requested is None:
        requested = os.cpu_count() or 1
    cap = os.environ.get("REPRO_MAX_WORKERS")
    if cap:
        try:
            requested = min(requested, max(1, int(cap)))
        except ValueError:
            pass
    return max(1, min(requested, n_tasks))


def _run_one(engine: "GMREngine", seed: int) -> "RunResult":
    """Worker entry point: one full evolutionary run.

    ``engine.run`` builds a fresh evaluator, so caches and the ES
    ``best_prev_full`` marker are private to this run -- which is exactly
    what makes parallel results bit-identical to serial ones.
    """
    return engine.run(seed=seed)


def run_many_parallel(
    engine: "GMREngine",
    n_runs: int,
    base_seed: int = 0,
    max_workers: int | None = None,
) -> list["RunResult"]:
    """Execute independent seeded runs across a process pool.

    Equivalent to ``run_many(engine, n_runs, base_seed)`` -- same seeds,
    same per-run ``best_fitness`` histories -- but wall-clock scales with
    the number of workers.  Results are returned in seed order.

    Args:
        engine: The engine to run; must be picklable (it is, including
            grammars and compiled models, which rebuild lazily).
        n_runs: Number of independent runs (seeds ``base_seed + i``).
        base_seed: First seed.
        max_workers: Pool size; defaults to ``min(n_runs, cpu_count)``.
            1 runs in-process (no pool) but keeps the same error
            contract.

    Raises:
        ParallelRunError: A worker raised; the error names the seed.
    """
    if n_runs <= 0:
        return []
    seeds = [base_seed + index for index in range(n_runs)]
    workers = default_workers(n_runs, max_workers)

    if workers == 1:
        results: list[RunResult] = []
        for seed in seeds:
            try:
                results.append(_run_one(engine, seed))
            except Exception as exc:
                raise ParallelRunError(seed, exc) from exc
        return results

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [(seed, pool.submit(_run_one, engine, seed)) for seed in seeds]
        results = []
        for seed, future in futures:
            try:
                results.append(future.result())
            except Exception as exc:
                raise ParallelRunError(seed, exc) from exc
        return results


def aggregate_stats(results: Sequence["RunResult"]) -> EvaluationStats:
    """Merge the per-run evaluation statistics of several runs."""
    return EvaluationStats.merge_all(result.stats for result in results)


class EvaluationBackend(ABC):
    """Strategy for evaluating a batch of unevaluated offspring.

    The engine hands over individuals whose ``fitness`` is ``None``; the
    backend must set ``fitness`` and ``fully_evaluated`` on each and keep
    the evaluator's statistics and ``best_prev_full`` marker up to date.
    """

    @abstractmethod
    def evaluate_batch(
        self,
        evaluator: GMRFitnessEvaluator,
        individuals: Sequence[Individual],
    ) -> None:
        """Evaluate ``individuals`` in place."""

    def close(self) -> None:
        """Release pooled resources (no-op for in-process backends)."""


class SerialBackend(EvaluationBackend):
    """In-process evaluation, identical to the engine's historical path:
    ``best_prev_full`` tightens after every individual."""

    def evaluate_batch(
        self,
        evaluator: GMRFitnessEvaluator,
        individuals: Sequence[Individual],
    ) -> None:
        for individual in individuals:
            evaluator.evaluate(individual)


# Per-worker-process evaluator, created once by the pool initializer so
# tree/compilation caches persist across batches within one worker.
_WORKER_EVALUATOR: GMRFitnessEvaluator | None = None


def _init_eval_worker(evaluator: GMRFitnessEvaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _evaluate_chunk(
    individuals: list[Individual],
    best_prev_full: float,
) -> tuple[list[tuple[float, bool]], EvaluationStats, float]:
    """Worker entry point: evaluate one chunk of a batch.

    Returns per-individual ``(fitness, fully_evaluated)`` pairs, the
    statistics delta for this chunk, and the worker's updated
    ``best_prev_full`` (for the parent's per-batch fan-in).
    """
    evaluator = _WORKER_EVALUATOR
    assert evaluator is not None, "pool initializer did not run"
    evaluator.best_prev_full = best_prev_full
    evaluator.stats = EvaluationStats()
    outcomes = []
    for individual in individuals:
        evaluator.evaluate(individual)
        outcomes.append((individual.fitness, individual.fully_evaluated))
    return outcomes, evaluator.stats, evaluator.best_prev_full


@dataclass
class ProcessPoolBackend(EvaluationBackend):
    """Evaluate offspring batches across a pool of worker processes.

    Each worker owns a process-local evaluator (tree cache, compiled-
    function table) that persists across batches.  The ES marker
    ``best_prev_full`` is broadcast at the start of each batch and the
    minimum over workers is folded back afterwards -- per-*batch*
    synchronisation, slightly lazier than the serial per-individual
    tightening, which is why batched evaluation is opt-in
    (``GMRConfig.eval_batch_size``) and switchable back to
    :class:`SerialBackend` semantics at any time.

    The backend itself stays picklable: the live pool is dropped on
    pickling and lazily rebuilt.
    """

    max_workers: int = 2

    def __post_init__(self) -> None:
        self._pool: ProcessPoolExecutor | None = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_pool"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def effective_workers(self) -> int:
        """Pool size after the ``REPRO_MAX_WORKERS`` cap."""
        return default_workers(self.max_workers, self.max_workers)

    def _ensure_pool(self, evaluator: GMRFitnessEvaluator) -> ProcessPoolExecutor:
        if self._pool is None:
            # The evaluator pickles without its compiled-function table;
            # each worker re-derives caches privately from task + config.
            seed_evaluator = GMRFitnessEvaluator(
                task=evaluator.task, config=evaluator.config
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.effective_workers,
                initializer=_init_eval_worker,
                initargs=(seed_evaluator,),
            )
        return self._pool

    def evaluate_batch(
        self,
        evaluator: GMRFitnessEvaluator,
        individuals: Sequence[Individual],
    ) -> None:
        pending = list(individuals)
        if not pending:
            return
        pool = self._ensure_pool(evaluator)
        chunk_size = -(-len(pending) // self.effective_workers)  # ceil division
        chunks = [
            pending[start : start + chunk_size]
            for start in range(0, len(pending), chunk_size)
        ]
        futures = [
            pool.submit(_evaluate_chunk, chunk, evaluator.best_prev_full)
            for chunk in chunks
        ]
        best = evaluator.best_prev_full
        for chunk, future in zip(chunks, futures):
            outcomes, stats_delta, worker_best = future.result()
            for individual, (fitness, fully) in zip(chunk, outcomes):
                individual.fitness = fitness
                individual.fully_evaluated = fully
            evaluator.stats = evaluator.stats.merge(stats_delta)
            best = min(best, worker_best)
        evaluator.best_prev_full = best

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
