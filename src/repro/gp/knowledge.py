"""Prior-knowledge encoding for genetic model revision.

Section III-B3 of the paper distinguishes three kinds of prior knowledge,
all of which are represented here and turned into TAG machinery by
:func:`build_grammar`:

1. **Plausible processes** -- the expert-written differential equations,
   written as expression ASTs whose revisable subprocesses are wrapped in
   ``Ext`` markers (the paper's ``{f(.)}_Ext`` notation).  They become the
   seed alpha-tree.
2. **Plausible revisions** -- for each extension point, which variables may
   be introduced and through which operators.  *Connectors* attach directly
   to the initial process (a deliberately limited set), while *extenders*
   operate on material added by earlier revisions (a richer set).  Each
   combination becomes one beta-tree, and the connector/extender symbol
   split guarantees connector trees can never adjoin into extender
   positions and vice versa.
3. **Parameter priors** -- expected value and allowed range per constant
   parameter, used to initialise parameters and to drive truncated-Gaussian
   mutation (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.expr.ast import Expr, ext_points, free_params
from repro.tag.derive import lift_model, op_leaf
from repro.tag.grammar import TagGrammar, random_value_lexeme_factory
from repro.tag.symbols import (
    MODEL,
    VALUE,
    Symbol,
    connector_symbol,
    extender_symbol,
    nonterminal,
    terminal,
)
from repro.tag.trees import AlphaTree, BetaTree, TreeNode

#: Binary operators usable in revisions.
BINARY_REVISION_OPS = ("+", "-", "*", "/")

#: Unary operators usable in revisions (extenders only, per Table II).
UNARY_REVISION_OPS = ("log", "exp")

#: Sentinel operand standing for the paper's random variable ``R``.
RANDOM_OPERAND = "R"


class KnowledgeError(ValueError):
    """Raised for inconsistent prior-knowledge specifications."""


@dataclass(frozen=True)
class ParameterPrior:
    """Expected value and allowed range of one constant parameter."""

    name: str
    mean: float
    minimum: float
    maximum: float
    unit: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if not self.minimum <= self.mean <= self.maximum:
            raise KnowledgeError(
                f"prior for {self.name}: mean {self.mean} outside "
                f"[{self.minimum}, {self.maximum}]"
            )

    def clip(self, value: float) -> float:
        """Clamp ``value`` to the allowed range (boundary rule of III-B3)."""
        if value < self.minimum:
            return self.minimum
        if value > self.maximum:
            return self.maximum
        return value


@dataclass(frozen=True)
class ExtensionSpec:
    """Plausible revisions for one extension point (one row of Table II).

    Attributes:
        name: Extension-point name, matching an ``Ext`` marker in the seed.
        variables: Driver variables that may be introduced here.
        include_random: Whether the random operand ``R`` is allowed.
        connector_ops: Binary operators allowed for connector revisions.
        extender_ops: Binary operators allowed for extender revisions.
        unary_extender_ops: Unary operators allowed for extender revisions.
    """

    name: str
    variables: tuple[str, ...]
    include_random: bool = True
    connector_ops: tuple[str, ...] = ("+",)
    extender_ops: tuple[str, ...] = BINARY_REVISION_OPS
    unary_extender_ops: tuple[str, ...] = UNARY_REVISION_OPS

    def operands(self) -> tuple[str, ...]:
        """All operand names, with ``R`` appended when allowed."""
        if self.include_random:
            return self.variables + (RANDOM_OPERAND,)
        return self.variables


@dataclass
class PriorKnowledge:
    """The complete prior-knowledge input to genetic model revision.

    Attributes:
        seed_equations: Expert-written ``dX/dt`` expressions keyed by state
            name, with ``Ext`` markers at revisable subprocesses.
        priors: Per-parameter priors, keyed by parameter name.
        extensions: Revision specs, one per extension point.
        rconst_bounds: Mutation range for random constants ``R``.
        rconst_init: Initialisation range for ``R`` (paper: [0, 1]).
        variable_levels: Expert knowledge of each driver variable's typical
            level.  When a variable has a level, revisions introduce it as
            an *anomaly*, ``(var - center) * scale`` with the centre
            initialised at the level -- a language bias that makes a fresh
            revision a small perturbation instead of a raw-magnitude shock
            (pH ~ 8 or conductivity ~ 300 added to a rate of order 1/day
            would be instantly lethal).  Variables without a level enter
            as ``var * scale``.
    """

    seed_equations: dict[str, Expr]
    priors: dict[str, ParameterPrior]
    extensions: list[ExtensionSpec] = field(default_factory=list)
    rconst_bounds: tuple[float, float] = (-1000.0, 1000.0)
    rconst_init: tuple[float, float] = (0.0, 1.0)
    variable_levels: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        declared = {spec.name for spec in self.extensions}
        if len(declared) != len(self.extensions):
            raise KnowledgeError("duplicate extension-point names")
        marked: set[str] = set()
        for state, expr in self.seed_equations.items():
            marked |= set(ext_points(expr))
        missing = declared - marked
        if missing:
            raise KnowledgeError(
                f"extension specs with no matching Ext marker in the seed: "
                f"{sorted(missing)}"
            )
        unspecified = marked - declared
        if unspecified:
            raise KnowledgeError(
                f"Ext markers without revision specs: {sorted(unspecified)}"
            )
        used_params: set[str] = set()
        for expr in self.seed_equations.values():
            used_params |= free_params(expr)
        unbound = used_params - set(self.priors)
        if unbound:
            raise KnowledgeError(
                f"seed parameters without priors: {sorted(unbound)}"
            )

    @property
    def state_names(self) -> tuple[str, ...]:
        return tuple(self.seed_equations)

    @property
    def parameter_names(self) -> tuple[str, ...]:
        return tuple(self.priors)

    def initial_parameters(self) -> dict[str, float]:
        """Parameters at their expected values (the paper's initial point)."""
        return {name: prior.mean for name, prior in self.priors.items()}


def _variable_leaf(name: str) -> TreeNode:
    return TreeNode(terminal(f"var:{name}"), payload=("var", name))


def center_symbol(variable: str) -> Symbol:
    """Substitution-slot symbol for a variable's anomaly centre."""
    return nonterminal(f"Ctr_{variable}")


def _operand_subtree(
    spec_name: str,
    operand: str,
    levels: dict[str, float] | None = None,
) -> TreeNode:
    """The operand side of a revision beta-tree.

    The operand is wrapped in an extender extension point so later
    extender revisions can elaborate it (paper Figure 7(c): the new
    material carries ``ExtE`` nodes).  Variables enter as tunable
    perturbations rather than raw magnitudes:

    * with expert knowledge of the variable's typical level, as an
      anomaly ``(var - center) * scale`` (centre initialised at the
      level, scale in [0, 1]);
    * otherwise pre-scaled, ``var * scale``.

    Either way a fresh revision starts as a small, survivable influence
    that Gaussian mutation can tune -- adding raw alkalinity (~50) or
    conductivity (~300) to a rate of order 1/day would make every such
    revision immediately lethal and the corresponding beta-trees dead
    weight in the grammar.
    """
    from repro.tag.derive import op_leaf as _op_leaf
    from repro.tag.symbols import EXP

    levels = levels or {}
    if operand == RANDOM_OPERAND:
        leaf: TreeNode = TreeNode(VALUE, is_subst=True)
    elif operand in levels:
        anomaly = TreeNode(
            EXP,
            (
                _variable_leaf(operand),
                _op_leaf("-"),
                TreeNode(center_symbol(operand), is_subst=True),
            ),
        )
        leaf = TreeNode(
            EXP,
            (anomaly, _op_leaf("*"), TreeNode(VALUE, is_subst=True)),
        )
    else:
        leaf = TreeNode(
            EXP,
            (
                _variable_leaf(operand),
                _op_leaf("*"),
                TreeNode(VALUE, is_subst=True),
            ),
        )
    return TreeNode(extender_symbol(spec_name), (leaf,))


def connector_beta(
    spec_name: str,
    op: str,
    operand: str,
    levels: dict[str, float] | None = None,
) -> BetaTree:
    """A connector beta-tree: ``existing  ->  existing <op> operand``."""
    symbol = connector_symbol(spec_name)
    root = TreeNode(
        symbol,
        (
            TreeNode(symbol, is_foot=True),
            op_leaf(op),
            _operand_subtree(spec_name, operand, levels),
        ),
    )
    return BetaTree(f"conn:{spec_name}:{op}:{operand}", root)


def extender_beta(
    spec_name: str,
    op: str,
    operand: str,
    levels: dict[str, float] | None = None,
) -> BetaTree:
    """An extender beta-tree: ``added  ->  added <op> operand``."""
    symbol = extender_symbol(spec_name)
    root = TreeNode(
        symbol,
        (
            TreeNode(symbol, is_foot=True),
            op_leaf(op),
            _operand_subtree(spec_name, operand, levels),
        ),
    )
    return BetaTree(f"ext:{spec_name}:{op}:{operand}", root)


def unary_extender_beta(spec_name: str, op: str) -> BetaTree:
    """A unary extender beta-tree: ``added  ->  op(added)``."""
    symbol = extender_symbol(spec_name)
    root = TreeNode(
        symbol,
        (op_leaf(op), TreeNode(symbol, is_foot=True)),
    )
    return BetaTree(f"extu:{spec_name}:{op}", root)


def build_grammar(knowledge: PriorKnowledge, seed_name: str = "seed") -> TagGrammar:
    """Compile prior knowledge into the TAG used by model revision.

    The seed equations are lifted into a single alpha-tree under a common
    ``Model`` root; each (extension point, operator, operand) combination
    from the revision specs becomes a beta-tree; and the random-operand
    slots are wired to a lexeme factory honouring the ``R`` prior.
    """
    seed_root = lift_model(knowledge.seed_equations)
    alpha = AlphaTree(seed_name, seed_root)
    levels = dict(knowledge.variable_levels)

    betas: dict[str, BetaTree] = {}
    for spec in knowledge.extensions:
        for op in spec.connector_ops:
            for operand in spec.operands():
                beta = connector_beta(spec.name, op, operand, levels)
                betas[beta.name] = beta
        for op in spec.extender_ops:
            for operand in spec.operands():
                beta = extender_beta(spec.name, op, operand, levels)
                betas[beta.name] = beta
        for op in spec.unary_extender_ops:
            beta = unary_extender_beta(spec.name, op)
            betas[beta.name] = beta

    low, high = knowledge.rconst_bounds
    init_low, init_high = knowledge.rconst_init
    factories = {
        VALUE: random_value_lexeme_factory(
            mean=(init_low + init_high) / 2.0,
            minimum=low,
            maximum=high,
            init_low=init_low,
            init_high=init_high,
        )
    }
    for variable, level in levels.items():
        spread = 0.05 * max(abs(level), 1.0)
        factories[center_symbol(variable)] = random_value_lexeme_factory(
            mean=level,
            minimum=low,
            maximum=high,
            init_low=level - spread,
            init_high=level + spread,
            sigma_hint=0.2 * max(abs(level), 1.0),
            symbol=center_symbol(variable),
        )
    return TagGrammar(
        start=MODEL,
        alphas={seed_name: alpha},
        betas=betas,
        lexeme_factories=factories,
    )
