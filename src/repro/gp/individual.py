"""Individuals: derivation-tree genomes plus constant parameters.

An individual couples the structural genome (a TAG derivation tree) with
the values of the expert model's constant parameters (Table III).  Random
constants introduced by revisions (``R`` lexemes) live inside the
derivation tree itself so they travel with subtrees under crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dynamics.system import ProcessModel
from repro.expr.ast import Expr
from repro.tag.derivation import DerivationTree
from repro.tag.derive import expressions_of


@dataclass
class Individual:
    """One candidate revised model.

    Attributes:
        derivation: The TAG derivation tree (structure genome).
        params: Values of the expert constant parameters, keyed by name.
        fitness: Last evaluated fitness (lower is better); None if stale.
        fully_evaluated: Whether the last evaluation ran all fitness cases
            (False when evaluation short-circuiting returned an estimate).
    """

    derivation: DerivationTree
    params: dict[str, float]
    fitness: float | None = field(default=None, compare=False)
    fully_evaluated: bool = field(default=False, compare=False)

    def copy(self) -> "Individual":
        """Deep copy; the copy's fitness is invalidated."""
        return Individual(
            derivation=self.derivation.copy(),
            params=dict(self.params),
        )

    def invalidate(self) -> None:
        """Mark cached fitness stale after a structural/parameter change."""
        self.fitness = None
        self.fully_evaluated = False

    @property
    def size(self) -> int:
        """Chromosome size (number of derivation nodes)."""
        return self.derivation.size

    def expressions(self) -> tuple[list[Expr], dict[str, float]]:
        """Derive the phenotype expressions and random-constant values."""
        return expressions_of(self.derivation)

    def phenotype(
        self,
        state_names: tuple[str, ...],
        var_order: tuple[str, ...],
    ) -> tuple[ProcessModel, tuple[float, ...]]:
        """Materialise the individual as a process model plus parameters.

        Returns the model and a parameter tuple following the model's
        ``param_order`` (expert parameters first, then ``_Rk`` constants).
        """
        expressions, rvalues = self.expressions()
        if len(expressions) != len(state_names):
            raise ValueError(
                f"derived {len(expressions)} equations for "
                f"{len(state_names)} states"
            )
        equations = dict(zip(state_names, expressions))
        model = ProcessModel.from_equations(
            equations,
            var_order=var_order,
            extra_params=tuple(self.params),
        )
        assignment = {**self.params, **rvalues}
        values = tuple(assignment[name] for name in model.param_order)
        return model, values

    def describe(self, state_names: tuple[str, ...]) -> str:
        """Render the revised equations with parameter values substituted."""
        expressions, rvalues = self.expressions()
        assignment = {**self.params, **rvalues}
        lines = [
            f"d{name}/dt = {expr}"
            for name, expr in zip(state_names, expressions)
        ]
        lines.append(
            "params: "
            + ", ".join(f"{k}={v:.4g}" for k, v in sorted(assignment.items()))
        )
        return "\n".join(lines)
