"""Tree caching of fitness evaluations (Section III-D).

Evaluation results are cached keyed on the *canonical* model structure
plus the (rounded) parameter values, so re-evaluating an algebraically
identical individual is a dictionary lookup.  Canonicalising the structure
first -- the paper's "algebraically simplifying the trees before they are
evaluated" -- is what lifts the hit rate above exact-duplicate matching.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Sequence

#: Cache keys round parameter values to this many significant digits, so
#: float noise below evaluation precision does not fragment entries.
PARAM_KEY_DIGITS = 12


@dataclass
class CacheStats:
    """Hit/miss counters for a tree cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Counter-wise sum with ``other`` (fan-in of per-worker caches)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    @classmethod
    def merge_all(cls, parts: "Iterable[CacheStats]") -> "CacheStats":
        """Merge any number of per-worker cache statistics."""
        total = cls()
        for part in parts:
            total = total.merge(part)
        return total

    def publish(self, registry: Any, prefix: str = "tree_cache") -> None:
        """Publish the counters into a :class:`repro.obs.MetricsRegistry`."""
        registry.counter(f"{prefix}.hits").inc(self.hits)
        registry.counter(f"{prefix}.misses").inc(self.misses)
        registry.counter(f"{prefix}.evictions").inc(self.evictions)


@dataclass
class TreeCache:
    """A bounded LRU cache from evaluation keys to fitness values.

    Lookups refresh an entry's recency, so over a long campaign the
    structures the search keeps revisiting stay resident while one-off
    evaluations age out; the capacity (``GMRConfig.tree_cache_size``
    when built by an evaluator) bounds memory instead of letting the
    cache grow for the whole run.  ``stats.evictions`` counts entries
    dropped at capacity.
    """

    max_entries: int = 200_000
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("TreeCache needs max_entries >= 1")
        self._entries: OrderedDict[Hashable, float] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def make_key(structure_key: str, params: Sequence[float]) -> Hashable:
        """Build a cache key from a structure key and parameter values."""
        rounded = tuple(
            float(format(value, f".{PARAM_KEY_DIGITS}g")) for value in params
        )
        return (structure_key, rounded)

    def get(self, key: Hashable) -> float | None:
        """Look up a fitness; updates hit/miss statistics and recency."""
        value = self._entries.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def peek(self, key: Hashable) -> float | None:
        """Look up a fitness without touching statistics or recency.

        Used by batch planning to decide which cohort members need a
        simulation column; the authoritative (stats-counting) ``get``
        still happens later, in cohort order.
        """
        return self._entries.get(key)

    def put(self, key: Hashable, fitness: float) -> None:
        """Store a fitness, evicting the least recently used when full.

        Re-putting an existing key updates its value in place without
        refreshing recency (only lookups count as use).
        """
        if key in self._entries:
            self._entries[key] = fitness
            return
        if len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = fitness

    def clear(self) -> None:
        self._entries.clear()
