"""Configuration for the GMR engine.

Defaults follow Appendix B of the paper (population 200, 100 generations,
elite 2, tournament 5, chromosome size 2..50, operator probabilities
crossover/subtree/Gaussian/replication = 0.3/0.3/0.3/0.1, five local-search
steps).  Experiments in this reproduction typically scale the population
and generation counts down; the dataclass keeps every knob explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ConfigError(ValueError):
    """Raised for inconsistent engine configurations."""


#: Historical default of :attr:`GMRConfig.kernel_min_batch`: structure
#: groups smaller than this take the scalar path, because a batched
#: rollout always integrates the full horizon while the scalar kernel
#: can still short-circuit.
MIN_BATCH_COLUMNS = 2


@dataclass(frozen=True)
class OperatorProbabilities:
    """Probabilities with which reproduction operators are chosen."""

    crossover: float = 0.3
    subtree_mutation: float = 0.3
    gaussian_mutation: float = 0.3
    replication: float = 0.1

    def __post_init__(self) -> None:
        total = (
            self.crossover
            + self.subtree_mutation
            + self.gaussian_mutation
            + self.replication
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"operator probabilities sum to {total}, not 1")
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"negative probability for {name}")


@dataclass(frozen=True)
class GMRConfig:
    """All knobs of a genetic-model-revision run.

    Attributes:
        population_size: Number of individuals per generation (POPSIZE).
        max_generations: Number of generations (MAXGEN).
        min_size: Minimum chromosome size (derivation nodes, MINSIZE).
        max_size: Maximum chromosome size (MAXSIZE).
        init_max_size: Cap on the *initial* individual size (None grows up
            to ``max_size``, the paper's behaviour).  Starting small and
            letting insertion/crossover grow structure tends to co-adapt
            constants better under tight evaluation budgets.
        elite_size: Individuals copied unchanged each generation.
        tournament_size: Tournament selection pressure.
        operators: Reproduction-operator probabilities.
        local_search_steps: Hill-climbing steps per offspring (0 disables).
        gaussian_sigma_factor: Mutation sigma as a fraction of the prior
            mean (the paper uses 1/4).
        sigma_rampdown_generations: Over how many final generations the
            sigma is ramped down linearly (the paper's ``k``).
        es_threshold: Evaluation short-circuiting threshold; None disables
            short-circuiting entirely.  Lower values are more eager; like
            the paper's Figure 11, eager thresholds trade accuracy for
            fewer evaluated time steps, and 1.3 matches full evaluation
            quality at a fraction of the cost on the river task.
        use_tree_cache: Enable fitness caching on canonical structure.
        use_compilation: Evaluate through runtime-compiled step functions
            (False falls back to the tree-walking interpreter).
        crossover_retries: Attempts to find compatible crossover subtrees
            before giving up (the paper's retry limit).
        local_search_gaussian: Mix a Gaussian parameter tweak into the
            local-search moves (memetic extension; the paper's local
            search uses insertion/deletion only -- set False for the
            strictly-paper behaviour).
        n_workers: Worker processes used by the parallel execution layer
            (:mod:`repro.gp.parallel`).  1 keeps everything in-process;
            ``run_many`` farms independent runs out when > 1, and the
            process-pool evaluation backend sizes its pool from it.
        strict_validate: Run the :mod:`repro.lint` static verification
            pass inside the engine: the grammar and knowledge bundle are
            linted once at the start of a run, and every seed individual
            and offspring derivation is linted before evaluation.  Any
            error-severity finding raises a single aggregated
            :class:`repro.lint.LintError` instead of crashing deep inside
            ``derive``/``compile`` (or, worse, inside N pool workers at
            once).  Off by default: the operators only produce valid
            derivations, so this guards against hand-built or
            deserialised artifacts at a small per-offspring cost.
        eval_batch_size: When > 0, ``GMREngine`` generates offspring in
            unevaluated batches of this size and evaluates each batch
            through its evaluation backend before local search.  Batched
            evaluation synchronises the ES ``best_prev_full`` marker once
            per batch instead of once per individual, so results can
            differ slightly from the (default) per-individual mode; 0
            preserves the strictly serial semantics.
        use_batched_kernel: Evaluate cohorts through the batched NumPy
            kernels (:func:`repro.expr.compile.compile_model_batched`):
            ``GMRFitnessEvaluator.evaluate_batch`` groups a cohort by
            model structure and integrates each group's K parameter
            vectors in one vectorised pass.  Results match the scalar
            path to float tolerance (ES short-circuiting and divergence
            handling are replayed per column in cohort order); set False
            to force every evaluation through the scalar kernels.
        kernel_batch_size: Maximum parameter columns per batched rollout;
            larger structure groups are chunked to this width.  Bounds
            the ``(T, n_states, K)`` trajectory memory of one rollout.
        kernel_min_batch: Minimum distinct parameter columns a structure
            group needs to take the batched (or fused) kernel path;
            smaller groups evaluate through the scalar kernel, which can
            still short-circuit mid-horizon.  Default is the historical
            module constant (:data:`MIN_BATCH_COLUMNS`).  Excluded from
            ``repr`` (like ``domain``): the threshold only moves work
            between bit-identical kernels, so checkpoints written under
            a different setting stay resumable.
        fuse_structures: Fuse several structure groups of a cohort into
            one padded multi-structure kernel
            (:func:`repro.expr.compile.compile_model_cohort`): up to
            ``fuse_cohort_size`` groups sharing variable and state
            orders integrate in a single ``(structures x K)``-lane
            NumPy pass, pooling positionally identical subexpressions
            across structures.  Lane results are bit-identical to the
            per-structure batched path (and hence the scalar path), so
            the switch changes throughput only; set False to keep the
            per-structure batched kernels.  Excluded from ``repr`` for
            the same reason as ``kernel_min_batch``.
        fuse_cohort_size: Maximum structure groups fused into one cohort
            kernel (>= 2).  Bounds both the fused kernel's lane width
            (at ``fuse_cohort_size * kernel_batch_size``) and the cost
            of recompiling when a cohort's membership changes.  Excluded
            from ``repr``.
        gaussian_proposals: Candidates proposed per Gaussian-mutation
            move (engine operator and hill-climb move alike).  With K > 1
            each move proposes K parameter vectors of the *same*
            structure, scores them through one batched rollout, and keeps
            the best -- the propose-K-then-pick-best pattern that batched
            kernels make nearly free.  1 (default) preserves the paper's
            single-proposal semantics.
        tree_cache_size: LRU capacity of the fitness tree cache
            (entries).  Bounds cache memory over long campaigns; see
            :class:`repro.gp.cache.TreeCache`.
        compiled_cache_size: LRU capacity of the evaluator's compiled-
            kernel share table (entries).
        domain: Name of the problem domain this run revises models for
            (see :mod:`repro.domains`).  Engines built through
            ``GMREngine.for_domain`` resolve knowledge and task from the
            registered :class:`~repro.domains.registry.DomainSpec` of
            this name; hand-built engines keep the default.  Excluded
            from ``repr`` so pre-domain checkpoints (which compare
            ``config_repr`` on resume) stay resumable -- domain mismatch
            is guarded by the checkpoint envelope's explicit ``domain``
            and ``domain_spec_hash`` fields instead, which produce
            clearer errors than a repr diff.
        static_triage: Run the semantic lint triage
            (:mod:`repro.lint.triage`) on every candidate before
            compilation: an interval-domain abstract interpretation of
            its equations over the task's reachable state/driver ranges.
            Candidates whose right-hand side is *provably* NaN for every
            reachable input (rule A001, the only fatal rule) skip
            compilation and simulation entirely and score the
            worst-fitness sentinel -- the exact value the simulator's
            first-step divergence would produce -- so fitness values,
            selection, the RNG stream, histories, traces and checkpoints
            are bit-identical with triage on or off; only the skipped
            work (counted in ``EvaluationStats.triage_skips``) differs.
            Off by default.
        checkpoint_every: Snapshot cadence of the resilience layer
            (:mod:`repro.gp.checkpoint`): when > 0 and ``GMREngine.run``
            is given a ``checkpoint_path``, the run's full loop state is
            written there every this many generations (atomically), so an
            interrupted run resumes from its last snapshot and reproduces
            the uninterrupted history bit-identically.  0 (default)
            disables mid-run snapshots; campaign-level result persistence
            (:func:`repro.gp.resilience.run_campaign`) works either way.
        checkpoint_keep: How many generation snapshots the checkpoint
            retention ring keeps on disk (see
            :func:`repro.gp.checkpoint.save_checkpoint`).  1 (default)
            keeps only the canonical newest envelope -- the historical
            behaviour; N > 1 additionally retains the newest N ring
            copies, and a corrupted canonical envelope falls back to the
            newest verifiable one on resume instead of raising.
            Excluded from ``repr`` (like ``domain``) so resume's
            ``config_repr`` equality check still accepts checkpoints
            written under a different retention setting -- retention is
            an operational knob, not part of the search configuration.
    """

    population_size: int = 200
    max_generations: int = 100
    min_size: int = 2
    max_size: int = 50
    init_max_size: int | None = None
    elite_size: int = 2
    tournament_size: int = 5
    operators: OperatorProbabilities = field(default_factory=OperatorProbabilities)
    local_search_steps: int = 5
    gaussian_sigma_factor: float = 0.25
    sigma_rampdown_generations: int = 10
    es_threshold: float | None = 1.3
    local_search_gaussian: bool = True
    use_tree_cache: bool = True
    use_compilation: bool = True
    crossover_retries: int = 10
    n_workers: int = 1
    eval_batch_size: int = 0
    strict_validate: bool = False
    static_triage: bool = False
    checkpoint_every: int = 0
    use_batched_kernel: bool = True
    kernel_batch_size: int = 64
    gaussian_proposals: int = 1
    tree_cache_size: int = 200_000
    compiled_cache_size: int = 512
    domain: str = field(default="river", repr=False)
    checkpoint_keep: int = field(default=1, repr=False)
    kernel_min_batch: int = field(default=MIN_BATCH_COLUMNS, repr=False)
    fuse_structures: bool = field(default=True, repr=False)
    fuse_cohort_size: int = field(default=8, repr=False)

    def __post_init__(self) -> None:
        if not self.domain or not isinstance(self.domain, str):
            raise ConfigError("domain must be a non-empty string")
        if self.population_size < 1:
            raise ConfigError("population_size must be positive")
        if self.max_generations < 1:
            raise ConfigError("max_generations must be positive")
        if not 1 <= self.min_size <= self.max_size:
            raise ConfigError("need 1 <= min_size <= max_size")
        if self.init_max_size is not None and not (
            self.min_size <= self.init_max_size <= self.max_size
        ):
            raise ConfigError("init_max_size must lie in [min_size, max_size]")
        if self.elite_size < 0 or self.elite_size > self.population_size:
            raise ConfigError("elite_size must be in [0, population_size]")
        if self.tournament_size < 1:
            raise ConfigError("tournament_size must be positive")
        if self.es_threshold is not None and self.es_threshold <= 0:
            raise ConfigError("es_threshold must be positive or None")
        if self.gaussian_sigma_factor <= 0:
            raise ConfigError("gaussian_sigma_factor must be positive")
        if self.n_workers < 1:
            raise ConfigError("n_workers must be positive")
        if self.eval_batch_size < 0:
            raise ConfigError("eval_batch_size must be >= 0")
        if self.checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be >= 0")
        if self.checkpoint_keep < 1:
            raise ConfigError("checkpoint_keep must be >= 1")
        if self.kernel_batch_size < 1:
            raise ConfigError("kernel_batch_size must be positive")
        if self.kernel_min_batch < 1:
            raise ConfigError("kernel_min_batch must be positive")
        if self.fuse_cohort_size < 2:
            raise ConfigError("fuse_cohort_size must be >= 2")
        if self.gaussian_proposals < 1:
            raise ConfigError("gaussian_proposals must be positive")
        if self.tree_cache_size < 1:
            raise ConfigError("tree_cache_size must be positive")
        if self.compiled_cache_size < 1:
            raise ConfigError("compiled_cache_size must be positive")

    def sigma_scale(self, generation: int) -> float:
        """Linear ramp-down of the Gaussian-mutation sigma (Section III-B3).

        Returns 1.0 until the final ``sigma_rampdown_generations``
        generations, then decays linearly towards (but never reaching) 0.
        """
        remaining = self.max_generations - generation
        k = self.sigma_rampdown_generations
        if k <= 0 or remaining >= k:
            return 1.0
        return max(remaining, 1) / k
