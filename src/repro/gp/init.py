"""Population initialisation for TAG3P-based model revision.

Following Section III-B2, an individual is created by selecting a size
between MINSIZE and MAXSIZE, starting from the seed alpha-tree (the expert
process -- the paper's "significant knowledge transfer at the starting
point"), and repeatedly adjoining randomly chosen compatible beta-trees at
randomly chosen open addresses until the target size is reached.
"""

from __future__ import annotations

import random

from repro.gp.config import GMRConfig
from repro.gp.individual import Individual
from repro.gp.knowledge import PriorKnowledge
from repro.tag.derivation import DerivationNode, DerivationTree
from repro.tag.grammar import TagGrammar


class InitialisationError(RuntimeError):
    """Raised when no valid individual can be grown."""


def grow_node(
    grammar: TagGrammar,
    root: DerivationNode,
    target_size: int,
    rng: random.Random,
) -> None:
    """Grow the subtree under ``root`` by random adjunctions.

    Adjunction sites are drawn only from ``root`` and its descendants, so
    callers can grow a replacement subtree without touching the rest of
    the individual.  Growth stops at ``target_size`` nodes (measured on
    ``root``'s subtree) or when no open site remains.
    """
    while root.size < target_size:
        sites = [
            (node, address)
            for node in root.walk()
            for address in node.open_adjunction_addresses(grammar)
        ]
        if not sites:
            return
        node, address = rng.choice(sites)
        symbol = node.tree.node_at(address).symbol
        candidates = grammar.betas_for(symbol)
        if not candidates:
            return
        beta = rng.choice(candidates)
        attach(grammar, node, address, beta, rng)


def grow_subtree(
    grammar: TagGrammar,
    derivation: DerivationTree,
    target_size: int,
    rng: random.Random,
) -> None:
    """Grow ``derivation`` in place by random adjunctions up to ``target_size``."""
    grow_node(grammar, derivation.root, target_size, rng)


def attach(
    grammar: TagGrammar,
    parent: DerivationNode,
    address: tuple[int, ...],
    beta,
    rng: random.Random,
) -> DerivationNode:
    """Adjoin ``beta`` under ``parent`` at ``address``, filling lexemes."""
    child = DerivationNode(tree=beta)
    child.fill_lexemes(grammar, rng)
    parent.children[address] = child
    return child


def random_individual(
    grammar: TagGrammar,
    knowledge: PriorKnowledge,
    config: GMRConfig,
    rng: random.Random,
) -> Individual:
    """Create one random individual seeded with the expert process.

    The expert constant parameters start at their expected values
    (Section III-B3); structure is grown to a random size in
    ``[min_size, max_size]``.
    """
    roots = grammar.start_alphas()
    if not roots:
        raise InitialisationError("grammar has no start-symbol alpha-trees")
    alpha = rng.choice(roots)
    root = DerivationNode(tree=alpha)
    root.fill_lexemes(grammar, rng)
    derivation = DerivationTree(root)
    upper = config.init_max_size or config.max_size
    target_size = rng.randint(config.min_size, upper)
    grow_subtree(grammar, derivation, target_size, rng)
    return Individual(
        derivation=derivation,
        params=knowledge.initial_parameters(),
    )


def initial_population(
    grammar: TagGrammar,
    knowledge: PriorKnowledge,
    config: GMRConfig,
    rng: random.Random,
) -> list[Individual]:
    """Create the first generation (Section III-B2, Population Initialization)."""
    return [
        random_individual(grammar, knowledge, config, rng)
        for __ in range(config.population_size)
    ]
