"""Deterministic fault injection (fault tolerance, tier 3; test-only).

Recovery code that only runs when hardware misbehaves is recovery code
that never runs in CI.  This module makes every failure mode the
resilience layer handles *deterministically reproducible*:

* :class:`FaultPlan` -- a declarative schedule of faults: raise at the
  Nth fitness evaluation, raise (or SIGKILL the worker) on the first j
  attempts of seed k, hang for a bounded interval, or refuse to pickle.
* :class:`FaultInjectingEvaluator` -- a :class:`~repro.gp.fitness.
  GMRFitnessEvaluator` that consults the plan on every evaluation.
* :class:`FaultInjectingEngine` -- a :class:`~repro.gp.engine.GMREngine`
  that applies seed/attempt-scoped faults at run start and builds
  fault-injecting evaluators.

Attempt-scoped faults ("fail seed 3 on its first two attempts") need a
memory that survives worker processes dying -- that is the point -- so
attempts are counted in an *attempt ledger* directory shared through the
pickled engine: one append-only file per seed.  Campaign retries of a
given seed are sequential, so the ledger needs no locking.

Nothing here is imported by production code paths; it exists so that
``tests/resilience`` can exercise crash/resume, retry, and broken-pool
recovery without flaky sleeps or real resource exhaustion.

.. warning::
   ``kill_seed_attempts`` SIGKILLs the *current process*.  Only use it
   with pooled execution (``max_workers >= 2``); on the in-process
   serial path it would kill the caller.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.gp.engine import GMREngine, ProgressFn, RunResult
from repro.gp.checkpoint import RunCheckpoint
from repro.gp.fitness import GMRFitnessEvaluator


class InjectedFault(RuntimeError):
    """The deliberate failure raised by fault-injection plans."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative schedule of faults to inject into runs.

    Attributes:
        fail_at_evaluation: Raise :class:`InjectedFault` on the Nth call
            to ``evaluate`` (1-based, per evaluator instance), or None.
        hang_at_evaluation: Sleep ``hang_seconds`` before the Nth
            evaluation (a bounded stand-in for a hung worker that lets
            timeout watchdogs fire without leaking processes), or None.
        hang_seconds: Duration of the injected hang.
        kill_at_evaluation: SIGKILL the evaluating process on the Nth
            evaluation (deterministically reproduces a worker dying
            mid-*batch* -- see the warning above), or None.
        term_at_evaluation: SIGTERM the evaluating process on the Nth
            evaluation, or None.  Unlike ``kill``, TERM is what a
            :class:`~repro.gp.governor.RunGovernor` with
            ``handle_signals`` turns into a cooperative stop, so this
            deterministically exercises graceful shutdown mid-run
            without subprocess choreography.
        fail_seed_attempts: ``{seed: j}`` -- raise at run start for the
            first ``j`` attempts of ``seed`` (a *transient* fault: the
            run succeeds from attempt ``j + 1`` on).
        kill_seed_attempts: ``{seed: j}`` -- SIGKILL the worker process
            at run start for the first ``j`` attempts of ``seed``
            (deterministically reproduces ``BrokenProcessPool``).
        max_faulty_attempts: Evaluation-scoped faults (``fail_at_...``,
            ``hang_at_...``, ``kill_at_...``) only fire while the seed's
            attempt number is at most this; None means every attempt.
        once_marker_dir: When set, each evaluation-scoped fault fires at
            most once globally, coordinated through marker files in this
            directory -- the cross-process memory that lets a recovery
            path (pool rebuild, chunk re-submission) be tested against a
            fault that does *not* simply recur on the retried work.
        unpicklable: Raise :class:`InjectedFault` when the engine is
            pickled (exercises submission-time failures: the fault
            surfaces in the parent, before any worker runs).
    """

    fail_at_evaluation: int | None = None
    hang_at_evaluation: int | None = None
    hang_seconds: float = 2.0
    kill_at_evaluation: int | None = None
    term_at_evaluation: int | None = None
    fail_seed_attempts: Mapping[int, int] = field(default_factory=dict)
    kill_seed_attempts: Mapping[int, int] = field(default_factory=dict)
    max_faulty_attempts: int | None = None
    once_marker_dir: str | None = None
    unpicklable: bool = False


def record_attempt(attempt_dir: str, seed: int) -> int:
    """Append one attempt for ``seed`` to the ledger; return its number."""
    path = os.path.join(attempt_dir, f"seed-{seed}.attempts")
    with open(path, "a", encoding="ascii") as handle:
        handle.write(f"{os.getpid()}\n")
    return current_attempt(attempt_dir, seed)


def current_attempt(attempt_dir: str, seed: int) -> int:
    """Attempts recorded so far for ``seed`` (0 if none)."""
    path = os.path.join(attempt_dir, f"seed-{seed}.attempts")
    try:
        with open(path, encoding="ascii") as handle:
            return sum(1 for _ in handle)
    except FileNotFoundError:
        return 0


@dataclass
class FaultInjectingEvaluator(GMRFitnessEvaluator):
    """An evaluator that injects the plan's evaluation-scoped faults.

    The evaluation counter is ordinary state, so it travels through run
    checkpoints: a resumed run replays its fault schedule exactly where
    the interrupted run left off.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    run_seed: int | None = None
    attempt_dir: str | None = None
    evaluations_seen: int = 0

    def _faults_active(self) -> bool:
        limit = self.plan.max_faulty_attempts
        if limit is None:
            return True
        if self.attempt_dir is None or self.run_seed is None:
            return True
        return current_attempt(self.attempt_dir, self.run_seed) <= limit

    def _claim_fault(self, kind: str) -> bool:
        """True if this fault may fire now (fire-once bookkeeping)."""
        marker_dir = self.plan.once_marker_dir
        if marker_dir is None:
            return True
        try:
            # O_CREAT|O_EXCL: exactly one process wins the claim.
            handle = os.open(
                os.path.join(marker_dir, f"fault-{kind}.fired"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        os.close(handle)
        return True

    def evaluate(self, individual) -> float:  # type: ignore[override]
        self.evaluations_seen += 1
        plan = self.plan
        if self._faults_active():
            if (
                plan.hang_at_evaluation == self.evaluations_seen
                and self._claim_fault("hang")
            ):
                time.sleep(plan.hang_seconds)
            if (
                plan.kill_at_evaluation == self.evaluations_seen
                and self._claim_fault("kill")
            ):
                os.kill(os.getpid(), signal.SIGKILL)
            if (
                plan.term_at_evaluation == self.evaluations_seen
                and self._claim_fault("term")
            ):
                os.kill(os.getpid(), signal.SIGTERM)
            if (
                plan.fail_at_evaluation == self.evaluations_seen
                and self._claim_fault("fail")
            ):
                raise InjectedFault(
                    f"injected failure at evaluation {self.evaluations_seen}"
                    + (
                        f" (seed {self.run_seed})"
                        if self.run_seed is not None
                        else ""
                    )
                )
        return super().evaluate(individual)


@dataclass
class KernelFaultInjectingEvaluator(GMRFitnessEvaluator):
    """An evaluator whose *batched kernel* fails on the first N groups.

    Unlike :class:`FaultInjectingEvaluator` (which overrides
    ``evaluate`` and therefore forces the engine onto the scalar cohort
    path), this one overrides only the batched rollout's inner
    simulation, so cohorts still plan and group through the batched
    kernel -- and the first ``fail_first_groups`` structure groups raise
    :class:`InjectedFault` mid-kernel.  That exercises the degradation
    ladder's first rung: the failed group falls back to the scalar path
    and its structure is blocklisted from future batching, with results
    identical to a healthy run.
    """

    fail_first_groups: int = 1
    groups_seen: int = 0

    def _simulate_group_inner(self, group) -> None:
        self.groups_seen += 1
        if self.groups_seen <= self.fail_first_groups:
            raise InjectedFault(
                f"injected batched-kernel failure (group {self.groups_seen})"
            )
        super()._simulate_group_inner(group)


@dataclass
class FaultInjectingEngine(GMREngine):
    """A GMR engine that applies seed/attempt-scoped faults at run start."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    attempt_dir: str | None = None

    def __getstate__(self) -> dict:
        if self.plan.unpicklable:
            raise InjectedFault("injected pickling failure")
        # Delegates to GMREngine so process-local extras (the tracer)
        # are dropped here too.
        return super().__getstate__()

    def make_evaluator(self) -> GMRFitnessEvaluator:
        return FaultInjectingEvaluator(
            task=self.task,
            config=self.config,
            plan=self.plan,
            run_seed=getattr(self, "_running_seed", None),
            attempt_dir=self.attempt_dir,
        )

    def run(
        self,
        seed: int | None = None,
        progress: ProgressFn | None = None,
        evaluator: GMRFitnessEvaluator | None = None,
        resume_from: "RunCheckpoint | str | os.PathLike[str] | None" = None,
        checkpoint_path: "str | os.PathLike[str] | None" = None,
    ) -> RunResult:
        if seed is not None:
            attempt = 1
            if self.attempt_dir is not None:
                attempt = record_attempt(self.attempt_dir, seed)
            failing_until = self.plan.fail_seed_attempts.get(seed, 0)
            if attempt <= failing_until:
                raise InjectedFault(
                    f"injected run failure: seed {seed}, attempt {attempt}"
                )
            killing_until = self.plan.kill_seed_attempts.get(seed, 0)
            if attempt <= killing_until:
                # Simulates an OOM kill; see the module warning above.
                os.kill(os.getpid(), signal.SIGKILL)
        self._running_seed = seed
        return super().run(
            seed=seed,
            progress=progress,
            evaluator=evaluator,
            resume_from=resume_from,
            checkpoint_path=checkpoint_path,
        )
