"""Local search: insertion, deletion, and stochastic hill climbing.

Section III-D: after crossover/mutation, each offspring goes through a
short series of local-search moves.  *Insertion* adjoins a random
compatible auxiliary tree at a random open address of the derivation tree;
*deletion* removes a random node.  Each move is adopted only if it improves
fitness (stochastic hill climbing).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.gp.config import GMRConfig
from repro.gp.individual import Individual
from repro.tag.grammar import TagGrammar

#: Callback evaluating an individual, returning its fitness (lower better).
FitnessFn = Callable[[Individual], float]

#: Callback evaluating a cohort at once (e.g.
#: :meth:`repro.gp.fitness.GMRFitnessEvaluator.evaluate_batch`).
BatchFitnessFn = Callable[[list[Individual]], list[float]]


def insertion(
    individual: Individual,
    grammar: TagGrammar,
    config: GMRConfig,
    rng: random.Random,
) -> Individual | None:
    """Adjoin a random compatible beta-tree at a random open address.

    Returns the modified copy, or None when the individual is already at
    MAXSIZE or has no open adjoining address.
    """
    from repro.gp.init import attach  # local import: cycle

    if individual.size >= config.max_size:
        return None
    child = individual.copy()
    sites = child.derivation.open_sites(grammar)
    if not sites:
        return None
    node, address = rng.choice(sites)
    symbol = node.tree.node_at(address).symbol
    candidates = grammar.betas_for(symbol)
    if not candidates:
        return None
    attach(grammar, node, address, rng.choice(candidates), rng)
    child.invalidate()
    return child


def deletion(
    individual: Individual,
    config: GMRConfig,
    rng: random.Random,
) -> Individual | None:
    """Remove a random leaf node from the derivation tree.

    Removing a leaf (a beta with no further adjunctions) always leaves a
    valid derivation.  Returns None when deletion would shrink the
    individual below MINSIZE or only the root remains.
    """
    if individual.size <= config.min_size:
        return None
    child = individual.copy()
    leaves = [
        (parent, address)
        for parent, address, node in child.derivation.walk_with_parents()
        if parent is not None and not node.children
    ]
    if not leaves:
        return None
    parent, address = rng.choice(leaves)
    del parent.children[address]
    child.invalidate()
    return child


def hill_climb(
    individual: Individual,
    grammar: TagGrammar,
    config: GMRConfig,
    fitness_fn: FitnessFn,
    rng: random.Random,
    steps: int | None = None,
    knowledge=None,
    sigma_scale: float = 1.0,
    batch_fitness_fn: BatchFitnessFn | None = None,
) -> Individual:
    """Stochastic hill climbing on offspring (Section III-D).

    Applies ``steps`` moves (default ``config.local_search_steps``),
    adopting a move only when it strictly improves fitness.  The paper's
    moves are *insertion* and *deletion* with equal probability; when
    ``knowledge`` is provided and ``config.local_search_gaussian`` is on,
    a small-step Gaussian parameter tweak is mixed in as a third move --
    a memetic extension that co-adapts the constants of freshly revised
    structure (without it, a promising revision is usually selected away
    before Gaussian mutation can reach it).

    With ``batch_fitness_fn`` provided and ``config.gaussian_proposals``
    above 1, the Gaussian move proposes that many parameter vectors and
    keeps the best, scored in one batched rollout (they all share the
    current structure); the winning candidate still only replaces
    ``current`` if it strictly improves on it.
    """
    from repro.gp.operators import (  # local import: cycle
        gaussian_mutation,
        gaussian_mutation_best_of,
    )

    if steps is None:
        steps = config.local_search_steps
    use_gaussian = config.local_search_gaussian and knowledge is not None
    propose_many = (
        batch_fitness_fn is not None and config.gaussian_proposals > 1
    )
    current = individual
    if current.fitness is None:
        current.fitness = fitness_fn(current)
    for __ in range(steps):
        roll = rng.random()
        if use_gaussian and roll < 1.0 / 3.0:
            if propose_many:
                candidate = gaussian_mutation_best_of(
                    current, knowledge, config, rng, sigma_scale,
                    batch_fitness_fn,
                )
            else:
                candidate = gaussian_mutation(
                    current, knowledge, config, rng, sigma_scale=sigma_scale
                )
        elif roll < (2.0 / 3.0 if use_gaussian else 0.5):
            candidate = insertion(current, grammar, config, rng)
        else:
            candidate = deletion(current, config, rng)
        if candidate is None:
            continue
        if candidate.fitness is None:
            candidate.fitness = fitness_fn(candidate)
        if candidate.fitness < current.fitness:
            current = candidate
    return current
