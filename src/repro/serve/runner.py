"""Execute one job's campaign (blocking; runs in a scheduler worker).

The runner is the bridge between a :class:`~repro.serve.jobs.JobSpec`
and the existing backend machinery: it builds the engine through
:meth:`GMREngine.for_domain`, attaches the job's budget as a
:class:`~repro.gp.governor.RunGovernor`, wires the job's JSONL trace
(resume-stitched across server lifetimes by the sink's last-seq
fast-forward), and calls :func:`~repro.gp.resilience.run_campaign`
against the job's checkpoint directory -- which run_campaign *claims*
for the duration, so a duplicate runner on the same job is refused
instead of corrupting the retention ring.

Everything durable already exists underneath: completed seeds persist
as ``run-<seed>.result``, in-flight seeds snapshot to ``run-<seed>.ckpt``
every generation, and a rerun of the same job resumes from those
envelopes via ``load_checkpoint_resilient`` and completes bit-identically
to an uninterrupted, unserved ``run_campaign`` (asserted end to end by
``tests/serve/test_restart.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

# Imported for its side effect: registering the builtin domains in the
# importing (main) thread, before any scheduler worker thread exists.
# Two worker threads racing the *first* import of repro.domains can see
# the package partially initialised (CPython exposes partial modules
# when its per-module import locks would deadlock) and fail domain
# lookup with an empty registry.
import repro.domains  # noqa: F401
from repro.gp.governor import RunGovernor
from repro.gp.resilience import FailurePolicy, run_campaign
from repro.obs.trace import JsonlSink, Tracer
from repro.serve.jobs import (
    CHECKPOINTED,
    DONE,
    FAILED,
    STOPPED,
    JobRecord,
    JobSpec,
    JobStore,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gp.engine import GMREngine, RunResult
    from repro.gp.resilience import CampaignResult

#: Cooperative stop reasons the serve layer injects through the
#: governor.  ``serve:stop`` is an operator stop (job parks as
#: ``stopped`` until explicitly resumed); ``serve:shutdown`` is a
#: graceful server drain (job parks as ``checkpointed`` and resumes
#: automatically on the next start).
SERVE_STOP = "serve:stop"
SERVE_SHUTDOWN = "serve:shutdown"


def build_engine(spec: JobSpec) -> "GMREngine":
    """The engine a job runs on; also the bit-identity reference.

    Tests compare a served job against ``run_campaign`` over exactly
    this engine, so the serve layer adds nothing to the search: same
    config, same domain task, same seeds.
    """
    from repro.gp.engine import GMREngine

    return GMREngine.for_domain(
        spec.domain, config=spec.make_config(), mini=spec.mini
    )


def summarize_result(result: "RunResult") -> dict[str, Any]:
    """Per-seed summary with bit-exact fitness encodings.

    ``float.hex`` round-trips exactly, so two summaries are equal iff
    the runs were bit-identical -- the e2e restart test compares these
    directly against an unserved campaign.
    """
    history = [record.best_fitness for record in result.history]
    return {
        "seed": result.seed,
        "best_fitness": result.best_fitness,
        "best_fitness_hex": float(result.best_fitness).hex(),
        "generations": len(history),
        "history_hex": [float(value).hex() for value in history],
        "evaluations": result.stats.evaluations,
    }


def summarize_campaign(
    job_id: str, outcome: "CampaignResult"
) -> dict[str, Any]:
    return {
        "job_id": job_id,
        "stop_reason": outcome.stop_reason,
        "completed": [
            summarize_result(result) for result in outcome.completed
        ],
        "failed": [
            {
                "seed": failure.seed,
                "attempts": failure.attempts,
                "error_type": failure.error_type,
                "message": failure.message,
            }
            for failure in outcome.failed
        ],
    }


@dataclass
class JobOutcome:
    """What one runner invocation produced: the next state + context."""

    state: str
    detail: dict[str, Any] = field(default_factory=dict)
    summary: dict[str, Any] | None = None


def _outcome_state(outcome: "CampaignResult") -> tuple[str, dict[str, Any]]:
    """Map a campaign outcome onto the job state machine."""
    reason = outcome.stop_reason
    if reason is not None:
        detail = {
            "reason": reason,
            "completed": len(outcome.completed),
            "failed": len(outcome.failed),
        }
        if reason == SERVE_STOP:
            return STOPPED, detail
        # Graceful server drain, or the job's own budget: resumable
        # on-disk state stays, and the scheduler may pick it back up.
        return CHECKPOINTED, detail
    if outcome.failed:
        worst = outcome.failed[0]
        return FAILED, {
            "completed": len(outcome.completed),
            "failed": len(outcome.failed),
            "error_type": worst.error_type,
            "message": worst.message,
        }
    return DONE, {
        "completed": len(outcome.completed),
        "failed": 0,
    }


def run_job(
    store: JobStore,
    record: JobRecord,
    governor: RunGovernor | None = None,
) -> JobOutcome:
    """Run (or resume) one job's campaign to its next state.

    Blocking; the scheduler calls this in a worker thread.  The
    ``governor`` is created by the scheduler *before* launch so stop
    requests can reach the run from the event loop; omitted, a fresh
    one is built from the spec's budget.
    """
    spec = record.spec
    engine = build_engine(spec)
    if governor is None:
        governor = RunGovernor(budget=spec.make_budget())
    engine.governor = governor
    progress = None
    if spec.pace > 0:

        def progress(generation: int, _record: object) -> None:
            time.sleep(spec.pace)

    engine.progress = progress
    tracer = Tracer(JsonlSink(store.trace_path(record.job_id)))
    engine.tracer = tracer
    try:
        outcome = run_campaign(
            engine,
            spec.n_runs,
            base_seed=spec.base_seed,
            max_workers=1,
            policy=FailurePolicy.collect(),
            checkpoint_dir=store.checkpoint_dir(record.job_id),
            tracer=tracer,
        )
    finally:
        tracer.close()
    state, detail = _outcome_state(outcome)
    summary = summarize_campaign(record.job_id, outcome)
    if state == DONE:
        store.write_result(record.job_id, summary)
    return JobOutcome(state=state, detail=detail, summary=summary)
