"""Asyncio scheduler: many campaigns multiplexed over one worker pool.

The scheduler owns the serve layer's control loop.  It watches the
:class:`~repro.serve.jobs.JobStore` for runnable jobs (``queued`` or
``checkpointed``), launches up to ``max_workers`` of them concurrently
-- each job's blocking :func:`~repro.serve.runner.run_job` runs in a
thread via ``asyncio.to_thread`` -- and folds every completion back
into the store's state machine.

Scheduling policy:

* **priority, then arrival** -- higher ``spec.priority`` first, FIFO
  within a priority level (arrival order is the store's submission
  log, so it survives restarts).
* **per-tenant quota** -- at most ``tenant_quota`` of any one tenant's
  jobs run concurrently (0 = unlimited).  A tenant at quota is
  *skipped, not waited on*: the scan continues down the queue to other
  tenants' jobs, so a quota-saturated tenant with a deep queue can
  never starve the pool or deadlock the scheduler (asserted by
  ``tests/serve/test_scheduler.py``).
* **cooperative stops** -- stop requests reach a running job through
  its :class:`~repro.gp.governor.RunGovernor`; the engine finishes the
  in-flight generation, checkpoints, and returns, and the job parks as
  ``stopped`` (operator stop) or ``checkpointed`` (server drain).

The scheduler holds no job state of its own beyond the set of active
tasks: a SIGKILL loses nothing, because every transition was already
fsynced by the store and every run snapshot is on disk.  On the next
start, :meth:`CampaignScheduler.start` replays the store, re-marks
orphaned ``running`` jobs as ``checkpointed``, and resumes them.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict

from repro.gp.governor import RunGovernor
from repro.serve.jobs import (
    FAILED,
    QUEUED,
    RUNNING,
    STOPPED,
    JobRecord,
    JobSpec,
    JobStateError,
    JobStore,
    runnable_jobs,
)
from repro.serve.runner import SERVE_SHUTDOWN, SERVE_STOP, run_job


class CampaignScheduler:
    """Multiplexes campaign jobs over a bounded asyncio worker pool."""

    def __init__(
        self,
        store: JobStore,
        max_workers: int = 2,
        tenant_quota: int = 0,
        poll_interval: float = 0.25,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if tenant_quota < 0:
            raise ValueError("tenant_quota must be >= 0 (0 = unlimited)")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.store = store
        self.max_workers = max_workers
        self.tenant_quota = tenant_quota
        self.poll_interval = poll_interval
        self._active: Dict[str, asyncio.Task] = {}
        self._governors: Dict[str, RunGovernor] = {}
        self._wake: asyncio.Event = asyncio.Event()
        self._loop_task: asyncio.Task | None = None
        self._draining = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------

    async def start(self) -> list[JobRecord]:
        """Recover the store and start the scheduling loop.

        Returns the jobs that were re-marked ``checkpointed`` because a
        previous server died while they ran -- they are first in line
        to resume.
        """
        recovered = self.store.recover()
        self._loop_task = asyncio.create_task(self._loop())
        self._wake.set()
        return recovered

    async def drain(self, reason: str = SERVE_SHUTDOWN) -> None:
        """Graceful shutdown: stop every running job, then the loop.

        Each active job's governor gets a cooperative stop; engines
        finish their in-flight generation, checkpoint, and return, and
        the jobs park as ``checkpointed`` -- the next server start
        resumes them.  Queued jobs simply stay ``queued``.
        """
        self._draining = True
        for governor in self._governors.values():
            governor.request_stop(reason)
        if self._active:
            await asyncio.gather(
                *self._active.values(), return_exceptions=True
            )
        # Stop the loop via the flag, not task cancellation: a wake
        # landing concurrently with cancel() can get swallowed inside
        # wait_for (the classic lost-cancellation race) and leave the
        # drain awaiting forever.
        self._closed = True
        self._wake.set()
        if self._loop_task is not None:
            await self._loop_task
            self._loop_task = None

    async def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until nothing is active or runnable (True), or timeout."""

        async def _idle() -> None:
            while self._active or any(
                record.runnable for record in self.store.list_jobs()
            ):
                await asyncio.sleep(self.poll_interval / 2)

        try:
            await asyncio.wait_for(_idle(), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    # -- submission / control ---------------------------------------

    def submit(self, spec: JobSpec) -> tuple[JobRecord, bool]:
        """Submit a job (idempotent) and nudge the loop."""
        record, created = self.store.submit(spec)
        self._wake.set()
        return record, created

    def request_stop(self, job_id: str) -> JobRecord:
        """Ask a job to stop.

        A running job stops cooperatively at its next generation
        boundary (the returned record still says ``running`` until the
        engine confirms the checkpoint).  A queued or checkpointed job
        parks as ``stopped`` immediately.  Terminal jobs raise
        :class:`~repro.serve.jobs.JobStateError`.
        """
        record = self.store.load(job_id)
        if job_id in self._governors:
            self._governors[job_id].request_stop(SERVE_STOP)
            return record
        if record.runnable:
            return self.store.transition(
                job_id, STOPPED, {"reason": SERVE_STOP}
            )
        raise JobStateError(
            f"job {job_id} is {record.state}; nothing to stop"
        )

    def resume(self, job_id: str) -> JobRecord:
        """Re-queue a ``stopped`` job (explicit operator resume)."""
        self.store.load(job_id)  # raise JobNotFoundError early
        record = self.store.transition(
            job_id, QUEUED, {"reason": "resume"}
        )
        self._wake.set()
        return record

    def active_jobs(self) -> list[str]:
        return sorted(self._active)

    # -- the loop ----------------------------------------------------

    async def _loop(self) -> None:
        while not self._closed:
            if not self._draining:
                self._fill()
            try:
                await asyncio.wait_for(
                    self._wake.wait(), timeout=self.poll_interval
                )
            except asyncio.TimeoutError:
                pass  # periodic rescan: offline submitters, store edits
            self._wake.clear()

    def _running_per_tenant(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job_id in self._active:
            try:
                tenant = self.store.load(job_id).spec.tenant
            except Exception:  # pragma: no cover - store raced away
                continue
            counts[tenant] = counts.get(tenant, 0) + 1
        return counts

    def _fill(self) -> None:
        """Launch runnable jobs into free slots, skipping quota'd tenants."""
        if len(self._active) >= self.max_workers:
            return
        tenants = self._running_per_tenant()
        for record in runnable_jobs(self.store.list_jobs()):
            if len(self._active) >= self.max_workers:
                break
            if record.job_id in self._active:
                continue
            if (
                self.tenant_quota > 0
                and tenants.get(record.spec.tenant, 0) >= self.tenant_quota
            ):
                continue  # skip, never wait: quota must not starve others
            self._launch(record)
            tenants[record.spec.tenant] = (
                tenants.get(record.spec.tenant, 0) + 1
            )

    def _launch(self, record: JobRecord) -> None:
        running = self.store.transition(record.job_id, RUNNING)
        governor = RunGovernor(budget=record.spec.make_budget())
        self._governors[record.job_id] = governor
        task = asyncio.create_task(self._run(running, governor))
        self._active[record.job_id] = task

    async def _run(self, record: JobRecord, governor: RunGovernor) -> None:
        job_id = record.job_id
        try:
            outcome = await asyncio.to_thread(
                run_job, self.store, record, governor
            )
            self.store.transition(job_id, outcome.state, outcome.detail)
        except Exception as exc:  # noqa: BLE001 - job failure, not ours
            detail: dict[str, Any] = {
                "error_type": type(exc).__name__,
                "message": str(exc),
            }
            try:
                self.store.transition(job_id, FAILED, detail)
            except JobStateError:  # pragma: no cover - already moved on
                pass
        finally:
            self._active.pop(job_id, None)
            self._governors.pop(job_id, None)
            self._wake.set()
