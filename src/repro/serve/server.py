"""Minimal asyncio HTTP front end for the campaign scheduler.

Stdlib only: an ``asyncio.start_server`` loop speaking enough
HTTP/1.1 (request line, headers, ``Content-Length`` bodies,
``Connection: close``) for a JSON control API.  No routing framework,
no threads -- every handler is a small synchronous function over the
:class:`~repro.serve.scheduler.CampaignScheduler` and its store, so
the whole surface stays auditable.

Routes::

    GET  /healthz                     liveness + worker occupancy
    GET  /jobs                        all jobs, arrival order
    POST /jobs                        submit a JobSpec (idempotent)
    GET  /jobs/<id>                   one job's record
    GET  /jobs/<id>/report            obs report over the job's trace
    GET  /jobs/<id>/progress?after=N  incremental trace events, seq >= N
    GET  /jobs/<id>/result            the result summary (done jobs)
    POST /jobs/<id>/stop              cooperative stop
    POST /jobs/<id>/resume            re-queue a stopped job

``/report`` returns exactly ``TraceReport.to_json()`` -- the same
payload ``python -m repro.obs report --json`` prints for the job's
trace file, so dashboards can switch between the file and the API
without a translation layer.  ``/progress`` streams the trace
incrementally: pass the ``next`` cursor from the previous response as
``after`` and only newer events come back (torn final lines from the
live writer are never served; see :func:`repro.obs.trace.iter_trace`).

Error mapping: :class:`~repro.serve.jobs.JobSpecError` -> 400,
:class:`~repro.serve.jobs.JobNotFoundError` -> 404,
:class:`~repro.serve.jobs.JobStateError` -> 409.
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.obs.report import build_report, report_from_file
from repro.obs.trace import TraceSchemaError, iter_trace
from repro.serve.jobs import (
    JobNotFoundError,
    JobSpecError,
    JobStateError,
)
from repro.serve.scheduler import CampaignScheduler

#: Largest request body we accept (a JobSpec is tiny; anything bigger
#: is a client bug or abuse).
MAX_BODY_BYTES = 1 << 20
#: Largest request head (request line + headers).
MAX_HEAD_BYTES = 1 << 16

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """An error with a definite HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class CampaignServer:
    """HTTP facade over one scheduler; owns the listening socket."""

    def __init__(
        self,
        scheduler: CampaignScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ---------------------------------------------------

    async def start(self) -> None:
        """Start the scheduler (store recovery included) and listen."""
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: drain jobs to checkpoints, close socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.drain()

    # -- connection handling ----------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except HttpError as exc:
            status, payload = exc.status, {"error": exc.message}
        except Exception as exc:  # noqa: BLE001 - never kill the server
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}"
            }
        body = (
            json.dumps(payload, sort_keys=True) + "\n"
        ).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, Any]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise HttpError(413, "request head too large") from None
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request") from None
        if len(head) > MAX_HEAD_BYTES:
            raise HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length_text!r}")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body") from None
        return self._route(method, target, body)

    # -- routing -----------------------------------------------------

    def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, Any]:
        split = urlsplit(target)
        segments = [part for part in split.path.split("/") if part]
        query = parse_qs(split.query)
        try:
            return self._dispatch(method, segments, query, body)
        except JobSpecError as exc:
            raise HttpError(400, str(exc)) from exc
        except JobNotFoundError as exc:
            raise HttpError(404, str(exc)) from exc
        except JobStateError as exc:
            raise HttpError(409, str(exc)) from exc

    def _dispatch(
        self,
        method: str,
        segments: list[str],
        query: dict[str, list[str]],
        body: bytes,
    ) -> tuple[int, Any]:
        if segments == ["healthz"]:
            if method != "GET":
                raise HttpError(405, "healthz is GET-only")
            return 200, {
                "status": "ok",
                "active": self.scheduler.active_jobs(),
                "max_workers": self.scheduler.max_workers,
            }
        if segments == ["jobs"]:
            if method == "GET":
                return 200, {
                    "jobs": [
                        record.to_json()
                        for record in self.scheduler.store.list_jobs()
                    ]
                }
            if method == "POST":
                return self._submit(body)
            raise HttpError(405, "jobs supports GET and POST")
        if len(segments) >= 2 and segments[0] == "jobs":
            job_id = segments[1]
            action = segments[2] if len(segments) == 3 else None
            if len(segments) > 3:
                raise HttpError(404, f"no route for {'/'.join(segments)}")
            return self._job_route(method, job_id, action, query)
        raise HttpError(404, f"no route for {'/'.join(segments) or '/'}")

    def _submit(self, body: bytes) -> tuple[int, Any]:
        from repro.serve.jobs import JobSpec

        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not JSON: {exc}")
        spec = JobSpec.from_json(payload)
        record, created = self.scheduler.submit(spec)
        return 200, {
            "job_id": record.job_id,
            "created": created,
            "state": record.state,
        }

    def _job_route(
        self,
        method: str,
        job_id: str,
        action: str | None,
        query: dict[str, list[str]],
    ) -> tuple[int, Any]:
        store = self.scheduler.store
        if action is None:
            if method != "GET":
                raise HttpError(405, "job detail is GET-only")
            return 200, store.load(job_id).to_json()
        if action == "report":
            if method != "GET":
                raise HttpError(405, "report is GET-only")
            store.load(job_id)
            trace = store.trace_path(job_id)
            if not os.path.exists(trace):
                return 200, build_report([]).to_json()
            return 200, report_from_file(trace).to_json()
        if action == "progress":
            if method != "GET":
                raise HttpError(405, "progress is GET-only")
            store.load(job_id)
            after_text = query.get("after", ["0"])[0]
            try:
                after = int(after_text)
            except ValueError:
                raise HttpError(400, f"bad after cursor: {after_text!r}")
            trace = store.trace_path(job_id)
            events: list[dict[str, Any]] = []
            cursor = after
            if os.path.exists(trace):
                try:
                    for event in iter_trace(trace, start_seq=after):
                        events.append(event.to_json())
                        cursor = event.seq + 1
                except (TraceSchemaError, json.JSONDecodeError) as exc:
                    raise HttpError(500, f"corrupt trace: {exc}") from exc
            return 200, {"job_id": job_id, "events": events, "next": cursor}
        if action == "result":
            if method != "GET":
                raise HttpError(405, "result is GET-only")
            store.load(job_id)
            result = store.read_result(job_id)
            if result is None:
                raise HttpError(404, f"job {job_id} has no result yet")
            return 200, result
        if action == "stop":
            if method != "POST":
                raise HttpError(405, "stop is POST-only")
            record = self.scheduler.request_stop(job_id)
            return 200, {"job_id": job_id, "state": record.state}
        if action == "resume":
            if method != "POST":
                raise HttpError(405, "resume is POST-only")
            record = self.scheduler.resume(job_id)
            return 200, {"job_id": job_id, "state": record.state}
        raise HttpError(404, f"no job action {action!r}")
