"""CLI for the campaign server: ``python -m repro.serve``.

One subcommand runs the server; the rest are thin HTTP clients over
``urllib.request`` so a shell (or a CI job) can drive a campaign
service end to end without extra tooling::

    python -m repro.serve serve --root /tmp/farm --port 8750 &
    python -m repro.serve submit --url http://127.0.0.1:8750 \
        --domain river --mini --n-runs 3
    python -m repro.serve status --url ... <job_id>
    python -m repro.serve watch  --url ... <job_id>
    python -m repro.serve report --url ... <job_id>

``serve`` shuts down gracefully on SIGTERM/SIGINT: running jobs park
as ``checkpointed`` and the next start resumes them.  A SIGKILL is
also survivable -- that is the point of the store -- it just skips
the courtesy drain.  ``--port 0`` picks an ephemeral port; pass
``--port-file`` to publish the bound port for test harnesses.

``report`` prints the server's report payload exactly as
``python -m repro.obs report --json <trace>`` would render the job's
trace file (same JSON, same key order, same indentation).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import time
import urllib.error
import urllib.request
from typing import Any

from repro.serve.jobs import JobSpec, JobStore, TERMINAL_STATES
from repro.serve.scheduler import CampaignScheduler
from repro.serve.server import CampaignServer


# -- HTTP client helpers ------------------------------------------------


class ClientError(RuntimeError):
    """A request that came back non-2xx (message carries the body)."""


def _request(
    url: str, method: str = "GET", payload: dict[str, Any] | None = None
) -> dict[str, Any]:
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            body = response.read()
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        raise ClientError(
            f"{method} {url} -> {exc.code}: {detail}"
        ) from exc
    except urllib.error.URLError as exc:
        raise ClientError(f"{method} {url} failed: {exc.reason}") from exc
    return json.loads(body.decode("utf-8"))


def _job_url(base: str, job_id: str, action: str | None = None) -> str:
    url = f"{base.rstrip('/')}/jobs/{job_id}"
    return f"{url}/{action}" if action else url


# -- subcommand implementations -----------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    store = JobStore(args.root)
    scheduler = CampaignScheduler(
        store,
        max_workers=args.workers,
        tenant_quota=args.tenant_quota,
    )
    server = CampaignServer(scheduler, host=args.host, port=args.port)

    async def main() -> None:
        await server.start()
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{server.port}\n")
        print(
            f"serving on http://{server.host}:{server.port} "
            f"(root={args.root}, workers={args.workers})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("draining: checkpointing running jobs", flush=True)
        await server.stop()

    asyncio.run(main())
    return 0


def _spec_from_args(args: argparse.Namespace) -> JobSpec:
    config: dict[str, Any] = {}
    for item in args.config or []:
        key, _, raw = item.partition("=")
        if not key or not raw:
            raise SystemExit(f"--config wants key=value, got {item!r}")
        config[key] = json.loads(raw)
    budget: dict[str, Any] = {}
    if args.max_generations is not None:
        budget["max_generations"] = args.max_generations
    if args.max_evaluations is not None:
        budget["max_evaluations"] = args.max_evaluations
    if args.max_wall_clock is not None:
        budget["max_wall_clock"] = args.max_wall_clock
    return JobSpec(
        domain=args.domain,
        n_runs=args.n_runs,
        base_seed=args.base_seed,
        mini=args.mini,
        tenant=args.tenant,
        priority=args.priority,
        config=config,
        budget=budget,
        pace=args.pace,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    payload = _request(
        f"{args.url.rstrip('/')}/jobs", method="POST", payload=spec.to_json()
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    payload = _request(f"{args.url.rstrip('/')}/jobs")
    for job in payload.get("jobs", []):
        print(f"{job['job_id']}  {job['state']}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    payload = _request(_job_url(args.url, args.job_id))
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    payload = _request(_job_url(args.url, args.job_id, "report"))
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """Poll a job to completion, printing progress events as they land."""
    cursor = 0
    while True:
        progress = _request(
            _job_url(args.url, args.job_id, "progress")
            + f"?after={cursor}"
        )
        for event in progress.get("events", []):
            if event.get("kind") == "generation":
                fields = event.get("fields", {})
                print(
                    f"gen {fields.get('generation')}: "
                    f"best={fields.get('best_fitness')}",
                    flush=True,
                )
        cursor = progress.get("next", cursor)
        status = _request(_job_url(args.url, args.job_id))
        state = status.get("state")
        if state in TERMINAL_STATES or state == "stopped":
            print(f"job {args.job_id}: {state}", flush=True)
            return 0 if state == "done" else 1
        time.sleep(args.interval)


def _cmd_stop(args: argparse.Namespace) -> int:
    payload = _request(
        _job_url(args.url, args.job_id, "stop"), method="POST"
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    payload = _request(
        _job_url(args.url, args.job_id, "resume"), method="POST"
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


# -- argument parsing ---------------------------------------------------


def _add_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8750",
        help="server base URL (default %(default)s)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run or drive the GMR campaign server.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the server")
    serve.add_argument("--root", required=True, help="job store directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8750, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here once listening",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="concurrent jobs"
    )
    serve.add_argument(
        "--tenant-quota",
        type=int,
        default=0,
        help="max concurrent jobs per tenant (0 = unlimited)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="submit a campaign job")
    _add_url(submit)
    submit.add_argument("--domain", default="river")
    submit.add_argument("--n-runs", type=int, default=1)
    submit.add_argument("--base-seed", type=int, default=0)
    submit.add_argument("--mini", action="store_true")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument(
        "--pace",
        type=float,
        default=0.0,
        help="seconds slept per generation (rate limiting)",
    )
    submit.add_argument(
        "--config",
        action="append",
        metavar="KEY=JSON",
        help="GMRConfig override, repeatable (e.g. --config "
        "max_generations=5)",
    )
    submit.add_argument("--max-generations", type=int, default=None)
    submit.add_argument("--max-evaluations", type=int, default=None)
    submit.add_argument("--max-wall-clock", type=float, default=None)
    submit.set_defaults(func=_cmd_submit)

    list_cmd = sub.add_parser("list", help="list jobs")
    _add_url(list_cmd)
    list_cmd.set_defaults(func=_cmd_list)

    for name, func, help_text in (
        ("status", _cmd_status, "one job's record"),
        ("report", _cmd_report, "obs report over the job's trace"),
        ("watch", _cmd_watch, "follow a job to completion"),
        ("stop", _cmd_stop, "cooperatively stop a job"),
        ("resume", _cmd_resume, "re-queue a stopped job"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        _add_url(cmd)
        cmd.add_argument("job_id")
        if name == "watch":
            cmd.add_argument(
                "--interval", type=float, default=0.5, help="poll period"
            )
        cmd.set_defaults(func=func)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130


if __name__ == "__main__":
    sys.exit(main())
