"""GMR campaigns as a service (serve layer).

A durable job store (content-addressed, idempotent submission), an
asyncio scheduler multiplexing campaigns over a bounded worker pool
with priorities and per-tenant quotas, and a stdlib HTTP API -- all
over the existing checkpoint/resume machinery, so a SIGKILLed server
restarts and finishes every in-flight job bit-identically.

Entry points: ``python -m repro.serve serve`` runs a server;
``submit``/``status``/``watch``/``report``/``stop``/``resume`` drive
one over HTTP.  See ``docs/tutorial.md`` ("Serving campaigns").
"""

from repro.serve.jobs import (
    CHECKPOINTED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNABLE_STATES,
    RUNNING,
    STOPPED,
    TERMINAL_STATES,
    TRANSITIONS,
    JobError,
    JobNotFoundError,
    JobRecord,
    JobSpec,
    JobSpecError,
    JobStateError,
    JobStore,
    check_transition,
    runnable_jobs,
)
from repro.serve.runner import (
    SERVE_SHUTDOWN,
    SERVE_STOP,
    JobOutcome,
    build_engine,
    run_job,
    summarize_campaign,
    summarize_result,
)
from repro.serve.scheduler import CampaignScheduler
from repro.serve.server import CampaignServer, HttpError

__all__ = [
    "CHECKPOINTED",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "QUEUED",
    "RUNNABLE_STATES",
    "RUNNING",
    "SERVE_SHUTDOWN",
    "SERVE_STOP",
    "STOPPED",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "CampaignScheduler",
    "CampaignServer",
    "HttpError",
    "JobError",
    "JobNotFoundError",
    "JobOutcome",
    "JobRecord",
    "JobSpec",
    "JobSpecError",
    "JobStateError",
    "JobStore",
    "build_engine",
    "check_transition",
    "run_job",
    "runnable_jobs",
    "summarize_campaign",
    "summarize_result",
]
