"""Durable job store for the campaign server (serve layer, tier 1).

A *job* is one model-revision campaign: a domain, a seed range, engine
configuration overrides, and an optional resource budget, wrapped in
scheduling metadata (tenant, priority).  The store gives jobs three
properties the rest of the serve layer builds on:

* **content-addressed ids** -- a job's id is the SHA-256 of its
  canonical spec JSON plus the registered domain's spec hash, so
  submitting the same work twice yields the same id and the second
  submission finds the first's directory instead of spawning a second
  campaign (idempotent submission).  Two specs differing in *any*
  field -- including tenant and priority -- are different jobs.
* **a typed state machine** -- ``queued -> running -> checkpointed /
  done / failed / stopped`` with an explicit transition table;
  off-table transitions raise :class:`JobStateError` instead of
  silently corrupting the lifecycle every consumer reasons over.
* **durable JSONL state** -- the spec is written once, atomically;
  every state transition appends one fsynced JSON line to
  ``state.jsonl``.  Recovery is a replay of that log (a torn final
  line from a killed writer is ignored, like a torn trace line), so a
  SIGKILLed server relaunches, reads the store, and knows exactly
  which jobs were in flight.  No SQLite, no daemons: plain files.

Layout under the store root::

    jobs/<job_id>/spec.json     the submitted JobSpec (immutable)
    jobs/<job_id>/state.jsonl   append-only state transitions
    jobs/<job_id>/ckpt/         campaign checkpoint dir (claimed while
                                running; see repro.gp.checkpoint)
    jobs/<job_id>/trace.jsonl   the job's obs trace (resume-stitched)
    jobs/<job_id>/result.json   summary written when the job completes
    submissions.jsonl           arrival order (one {"job_id"} per line)
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable

# -- Job states ---------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
CHECKPOINTED = "checkpointed"
DONE = "done"
FAILED = "failed"
STOPPED = "stopped"

#: Every job state, in lifecycle order.
JOB_STATES = (QUEUED, RUNNING, CHECKPOINTED, DONE, FAILED, STOPPED)

#: The typed state machine: state -> states reachable from it.
#: ``checkpointed`` means "interrupted with resumable on-disk state"
#: (server restart, graceful shutdown, budget pause); ``stopped`` means
#: an operator asked for the stop and must explicitly resume
#: (``stopped -> queued``).  ``done`` and ``failed`` are terminal.
TRANSITIONS: dict[str, tuple[str, ...]] = {
    QUEUED: (RUNNING, STOPPED),
    RUNNING: (CHECKPOINTED, DONE, FAILED, STOPPED),
    CHECKPOINTED: (RUNNING, STOPPED),
    STOPPED: (QUEUED,),
    DONE: (),
    FAILED: (),
}

#: States a scheduler may pick up and run.
RUNNABLE_STATES = (QUEUED, CHECKPOINTED)

#: States no transition leaves.
TERMINAL_STATES = (DONE, FAILED)


class JobError(RuntimeError):
    """Base class for job-store failures."""


class JobSpecError(JobError, ValueError):
    """A job spec is malformed or inconsistent."""


class JobStateError(JobError):
    """An off-table state transition was requested."""


class JobNotFoundError(JobError, KeyError):
    """No job with the given id exists in the store."""

    def __init__(self, job_id: str) -> None:
        super().__init__(job_id)
        self.job_id = job_id

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return f"no such job: {self.job_id}"


# -- Spec ---------------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """One campaign-as-a-service request.

    Attributes:
        domain: Registered domain name (``river``, ``sir``, ...); the
            runner resolves it through :meth:`GMREngine.for_domain`.
        n_runs: Number of independent seeded runs in the campaign.
        base_seed: First seed; the campaign covers
            ``base_seed .. base_seed + n_runs - 1``.
        mini: Use the domain's small conformance task instead of the
            standard one (cheap smoke campaigns, tests).
        tenant: Quota bucket the job is accounted against.
        priority: Larger runs earlier (FIFO within equal priority).
        config: :class:`~repro.gp.config.GMRConfig` overrides by field
            name (``population_size``, ``max_generations``, ...).
            ``checkpoint_every`` defaults to 1 so every job is
            restart-survivable at generation granularity.
        budget: :class:`~repro.gp.governor.CampaignBudget` fields
            (``max_wall_clock`` / ``max_evaluations`` /
            ``max_generations``); empty means unlimited.
        pace: Seconds slept after each completed generation.  A pacing
            knob for rate-limiting and for tests that must catch a job
            mid-run; sleeping never feeds back into the search, so a
            paced job's results are bit-identical to an unpaced one.
    """

    domain: str = "river"
    n_runs: int = 1
    base_seed: int = 0
    mini: bool = False
    tenant: str = "default"
    priority: int = 0
    config: dict[str, Any] = field(default_factory=dict)
    budget: dict[str, Any] = field(default_factory=dict)
    pace: float = 0.0

    def __post_init__(self) -> None:
        if not self.domain or not isinstance(self.domain, str):
            raise JobSpecError("domain must be a non-empty string")
        if not isinstance(self.n_runs, int) or self.n_runs < 1:
            raise JobSpecError("n_runs must be an integer >= 1")
        if not isinstance(self.base_seed, int) or isinstance(
            self.base_seed, bool
        ):
            raise JobSpecError("base_seed must be an integer")
        if not self.tenant or not isinstance(self.tenant, str):
            raise JobSpecError("tenant must be a non-empty string")
        if not isinstance(self.priority, int) or isinstance(
            self.priority, bool
        ):
            raise JobSpecError("priority must be an integer")
        if not isinstance(self.config, dict):
            raise JobSpecError("config must be a dict of GMRConfig overrides")
        if not isinstance(self.budget, dict):
            raise JobSpecError("budget must be a dict of budget ceilings")
        if not isinstance(self.pace, (int, float)) or self.pace < 0:
            raise JobSpecError("pace must be a non-negative number")
        for key in self.config:
            if not isinstance(key, str):
                raise JobSpecError(f"config key {key!r} is not a string")
        # Fail at submission, not deep inside the runner: the canonical
        # form must serialise, and budget fields must be known.
        try:
            self.canonical_json()
        except (TypeError, ValueError) as exc:
            raise JobSpecError(f"spec is not JSON-serialisable: {exc}") from exc
        self.make_budget()
        self.make_config()

    # -- canonical form / identity ----------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "domain": self.domain,
            "n_runs": self.n_runs,
            "base_seed": self.base_seed,
            "mini": self.mini,
            "tenant": self.tenant,
            "priority": self.priority,
            "config": dict(self.config),
            "budget": dict(self.budget),
            "pace": self.pace,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "JobSpec":
        if not isinstance(payload, dict):
            raise JobSpecError(
                f"job spec must be a JSON object, got {type(payload).__name__}"
            )
        known = {
            "domain", "n_runs", "base_seed", "mini", "tenant", "priority",
            "config", "budget", "pace",
        }
        unknown = sorted(key for key in payload if key not in known)
        if unknown:
            raise JobSpecError(
                f"unknown job spec field(s) {unknown}; "
                f"known: {sorted(known)}"
            )
        return cls(**payload)

    def canonical_json(self) -> str:
        """Byte-stable canonical serialisation (the hashing input)."""
        return json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )

    def job_id(self) -> str:
        """Content-addressed id: SHA-256 over spec + domain spec hash.

        Including the domain's registered spec hash means the same
        textual spec against a *changed* domain (different knowledge
        bundle) is a different job -- the serve-layer analogue of the
        checkpoint envelope's ``domain_spec_hash`` guard.
        """
        from repro.domains.registry import domain_spec_hash

        digest = hashlib.sha256()
        digest.update(self.canonical_json().encode("utf-8"))
        digest.update(b"\n")
        digest.update(domain_spec_hash(self.domain).encode("utf-8"))
        return digest.hexdigest()

    # -- engine construction helpers ---------------------------------

    def make_config(self):
        """Build the job's :class:`~repro.gp.config.GMRConfig`.

        Overrides are applied over a restart-survivable baseline
        (``checkpoint_every=1``, ``n_workers=1``: the scheduler
        multiplexes jobs, each job runs its seeds serially).
        """
        from repro.gp.config import ConfigError, GMRConfig

        fields: dict[str, Any] = {"checkpoint_every": 1, "n_workers": 1}
        fields.update(self.config)
        fields["domain"] = self.domain
        try:
            return GMRConfig(**fields)
        except TypeError as exc:
            raise JobSpecError(f"bad config override: {exc}") from exc
        except ConfigError as exc:
            raise JobSpecError(f"invalid config: {exc}") from exc

    def make_budget(self):
        """The job's :class:`~repro.gp.governor.CampaignBudget` or None."""
        from repro.gp.governor import CampaignBudget, GovernorConfigError

        if not self.budget:
            return None
        try:
            budget = CampaignBudget.from_json(self.budget)
        except GovernorConfigError as exc:
            raise JobSpecError(f"invalid budget: {exc}") from exc
        return None if budget.unlimited else budget


# -- Record -------------------------------------------------------------


@dataclass
class JobRecord:
    """A job as the store knows it: spec + replayed state history."""

    job_id: str
    spec: JobSpec
    state: str = QUEUED
    detail: dict[str, Any] = field(default_factory=dict)
    transitions: list[dict[str, Any]] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def runnable(self) -> bool:
        return self.state in RUNNABLE_STATES

    def to_json(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "detail": dict(self.detail),
            "spec": self.spec.to_json(),
            "transitions": list(self.transitions),
        }


def check_transition(current: str, new: str) -> None:
    """Raise :class:`JobStateError` unless ``current -> new`` is on-table."""
    if new not in JOB_STATES:
        raise JobStateError(
            f"unknown job state {new!r}; known: {list(JOB_STATES)}"
        )
    if new not in TRANSITIONS.get(current, ()):
        raise JobStateError(
            f"invalid transition {current!r} -> {new!r}; from {current!r} "
            f"only {list(TRANSITIONS.get(current, ()))} are reachable"
        )


# -- Store --------------------------------------------------------------


def _atomic_write_text(path: str, text: str) -> None:
    """Durable small-file write: temp sibling, fsync, rename."""
    temp = f"{path}.tmp.{os.getpid()}"
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def _append_jsonl(path: str, payload: dict[str, Any]) -> None:
    """Append one fsynced JSON line (complete-line-or-nothing on crash
    is not guaranteed by POSIX, which is why every reader tolerates a
    torn final line)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _read_jsonl(path: str) -> list[dict[str, Any]]:
    """Replay an append-only JSONL log; a torn final line is ignored."""
    try:
        handle = open(path, encoding="utf-8")
    except OSError:
        return []
    entries: list[dict[str, Any]] = []
    with handle:
        line = handle.readline()
        while line:
            next_line = handle.readline() if line.endswith("\n") else ""
            stripped = line.strip()
            if stripped:
                try:
                    payload = json.loads(stripped)
                except json.JSONDecodeError:
                    if not next_line:
                        break  # torn final line from a killed writer
                    raise
                if isinstance(payload, dict):
                    entries.append(payload)
            line = next_line
    return entries


class JobStore:
    """On-disk job registry: idempotent submission, durable state.

    One store root serves one server instance at a time (running jobs
    additionally claim their checkpoint directories, so even two
    servers pointed at the same root cannot interleave writers on one
    job).  All methods are synchronous and cheap; the asyncio layer
    calls them directly.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = os.fspath(root)
        self.jobs_root = os.path.join(self.root, "jobs")
        os.makedirs(self.jobs_root, exist_ok=True)

    # -- paths -------------------------------------------------------

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_root, job_id)

    def spec_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "spec.json")

    def state_log_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "state.jsonl")

    def checkpoint_dir(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "ckpt")

    def trace_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "trace.jsonl")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "result.json")

    def _submissions_path(self) -> str:
        return os.path.join(self.root, "submissions.jsonl")

    # -- submission --------------------------------------------------

    def submit(self, spec: JobSpec) -> tuple[JobRecord, bool]:
        """Register a job; idempotent on the content-addressed id.

        Returns ``(record, created)``.  A resubmission of an existing
        spec returns the stored record unchanged with ``created=False``
        -- never a second campaign.  Creation is race-safe across
        processes: the spec file is created with ``O_EXCL``, so exactly
        one of two concurrent submitters initialises the job.
        """
        job_id = spec.job_id()
        spec_path = self.spec_path(job_id)
        if os.path.exists(spec_path):
            return self.load(job_id), False
        os.makedirs(self.job_dir(job_id), exist_ok=True)
        text = json.dumps(spec.to_json(), sort_keys=True, indent=2) + "\n"
        try:
            fd = os.open(spec_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self.load(job_id), False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        _append_jsonl(self.state_log_path(job_id), {"state": QUEUED})
        _append_jsonl(self._submissions_path(), {"job_id": job_id})
        return self.load(job_id), True

    # -- loading -----------------------------------------------------

    def exists(self, job_id: str) -> bool:
        return os.path.exists(self.spec_path(job_id))

    def load(self, job_id: str) -> JobRecord:
        """Rebuild a record by replaying its state log."""
        try:
            with open(self.spec_path(job_id), encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            raise JobNotFoundError(job_id) from None
        except json.JSONDecodeError as exc:
            raise JobError(f"corrupt spec for job {job_id}: {exc}") from exc
        spec = JobSpec.from_json(payload)
        transitions = _read_jsonl(self.state_log_path(job_id))
        record = JobRecord(job_id=job_id, spec=spec, transitions=transitions)
        if transitions:
            record.state = transitions[-1].get("state", QUEUED)
            detail = transitions[-1].get("detail")
            record.detail = detail if isinstance(detail, dict) else {}
        return record

    def submitted_ids(self) -> list[str]:
        """Job ids in arrival order (deduplicated, existing only)."""
        seen: dict[str, None] = {}
        for entry in _read_jsonl(self._submissions_path()):
            job_id = entry.get("job_id")
            if isinstance(job_id, str) and job_id not in seen:
                seen[job_id] = None
        known = dict(seen)
        # Jobs materialised without a submissions line (a submitter
        # killed between the two appends) still surface, last.
        try:
            names = sorted(os.listdir(self.jobs_root))
        except OSError:
            names = []
        for name in names:
            if name not in known and os.path.exists(self.spec_path(name)):
                known[name] = None
        return [job_id for job_id in known if self.exists(job_id)]

    def list_jobs(self) -> list[JobRecord]:
        """All stored jobs, in arrival order."""
        return [self.load(job_id) for job_id in self.submitted_ids()]

    # -- state transitions -------------------------------------------

    def transition(
        self,
        job_id: str,
        state: str,
        detail: dict[str, Any] | None = None,
    ) -> JobRecord:
        """Append one validated state transition and return the record."""
        record = self.load(job_id)
        check_transition(record.state, state)
        entry: dict[str, Any] = {"state": state}
        if detail:
            entry["detail"] = detail
        _append_jsonl(self.state_log_path(job_id), entry)
        record.state = state
        record.detail = dict(detail or {})
        record.transitions.append(entry)
        return record

    def recover(self) -> list[JobRecord]:
        """Mark jobs a dead server left ``running`` as ``checkpointed``.

        Called once at startup: any job whose last transition says
        ``running`` was in flight when the previous process died
        (SIGKILL skips every graceful path), and its on-disk campaign
        state -- per-seed results, checkpoint envelopes, the stale
        directory claim -- is exactly what resume needs.  Returns the
        re-marked records.
        """
        recovered: list[JobRecord] = []
        for record in self.list_jobs():
            if record.state == RUNNING:
                recovered.append(
                    self.transition(
                        record.job_id,
                        CHECKPOINTED,
                        {"reason": "server-restart"},
                    )
                )
        return recovered

    # -- results -----------------------------------------------------

    def write_result(self, job_id: str, payload: dict[str, Any]) -> None:
        """Atomically persist a job's result summary JSON."""
        _atomic_write_text(
            self.result_path(job_id),
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
        )

    def read_result(self, job_id: str) -> dict[str, Any] | None:
        try:
            with open(self.result_path(job_id), encoding="utf-8") as handle:
                return json.load(handle)
        except OSError:
            return None
        except json.JSONDecodeError as exc:
            raise JobError(f"corrupt result for job {job_id}: {exc}") from exc


def runnable_jobs(records: Iterable[JobRecord]) -> list[JobRecord]:
    """Scheduling order: priority desc, then arrival (stable sort)."""
    runnable = [record for record in records if record.runnable]
    runnable.sort(key=lambda record: -record.spec.priority)
    return runnable
